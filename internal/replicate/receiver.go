package replicate

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"krad/internal/journal"
)

// Applier is the follower-side state machine the Receiver drives — in
// practice the server.Service in follower mode. Apply and ApplySnap are
// called strictly in sequence order per shard and never concurrently
// (the receiver serializes across connections); an error refuses the
// record, which withholds the ack and drops the connection.
type Applier interface {
	// Shards is the fleet shard count.
	Shards() int
	// NextSeqs reports, per shard, the next sequence number the follower
	// needs (applied-through + 1).
	NextSeqs() []int64
	// ApplyReplicated applies one committed record as the shard's seq-th
	// mutation: journal it, then replay it through the engine.
	ApplyReplicated(shard int, seq int64, rec journal.Record) error
	// ApplyReplicatedSnap resets the shard to a snapshot covering
	// through rec.Seq (compaction overtook this follower).
	ApplyReplicatedSnap(shard int, rec journal.Record) error
}

// ReceiverConfig parameterizes a Receiver.
type ReceiverConfig struct {
	// Listener accepts primary connections; the Receiver owns and closes
	// it. Required.
	Listener net.Listener
	// Applier consumes the stream. Required.
	Applier Applier
	// Epoch is the follower's starting epoch; it adopts any higher epoch
	// a primary presents, and promotion bumps it past everything seen.
	Epoch int64
	// PromoteAfter, when positive, self-promotes the follower once a
	// primary has been silent for this long — after having connected at
	// least once, so a follower booting before its primary does not
	// instantly crown itself. Must be configured strictly above the
	// primary's lease for split-brain safety. 0 means manual promotion
	// only (POST /v1/promote).
	PromoteAfter time.Duration
	// OnPromote runs exactly once, synchronously, when the follower
	// promotes (manually or by timeout), with the new epoch.
	OnPromote func(epoch int64)
	// Logf receives lifecycle messages; nil discards them.
	Logf func(format string, args ...any)
}

// ReceiverStats is a point-in-time replication summary of the follower
// side.
type ReceiverStats struct {
	Epoch    int64 `json:"epoch"`
	Promoted bool  `json:"promoted,omitempty"`
	// Connected reports a live primary stream; Connects counts accepted
	// handshakes.
	Connected bool  `json:"connected"`
	Connects  int64 `json:"connects"`
	// Applied counts records applied since start; Snaps counts snapshot
	// resets.
	Applied int64 `json:"applied"`
	Snaps   int64 `json:"snaps,omitempty"`
	// SilenceMS is the time since the last primary frame, in
	// milliseconds (-1 before any connection).
	SilenceMS int64 `json:"silence_ms"`
}

// Receiver is the follower half of replication: it accepts a primary's
// stream, applies records through the Applier in order, acks, and owns
// the promotion decision. See the package comment for the protocol.
type Receiver struct {
	cfg ReceiverConfig

	mu        sync.Mutex
	epoch     int64
	promoted  bool
	active    net.Conn // the connection currently allowed to apply
	connects  int64
	applied   int64
	snaps     int64
	lastFrame time.Time
	ever      bool
	closed    bool

	done chan struct{} // closed when the accept loop exits
}

// NewReceiver builds a receiver and starts accepting.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("replicate: receiver needs a listener")
	}
	if cfg.Applier == nil {
		return nil, fmt.Errorf("replicate: receiver needs an applier")
	}
	if cfg.Epoch < 1 {
		return nil, fmt.Errorf("replicate: receiver epoch %d, want ≥ 1", cfg.Epoch)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := &Receiver{cfg: cfg, epoch: cfg.Epoch, done: make(chan struct{})}
	go r.acceptLoop()
	if cfg.PromoteAfter > 0 {
		go r.promoteLoop()
	}
	return r, nil
}

// Close stops accepting and tears down the active stream. It does not
// promote.
func (r *Receiver) Close() {
	r.mu.Lock()
	r.closed = true
	conn := r.active
	r.mu.Unlock()
	_ = r.cfg.Listener.Close()
	if conn != nil {
		_ = conn.Close()
	}
	<-r.done
}

// Promote flips the follower to primary: bump the epoch past everything
// seen, fence the current primary's stream if one is attached, and run
// OnPromote. Idempotent — later calls return the promoted epoch without
// side effects. The caller is responsible for actually starting to serve
// (server.Service.Promote does, via OnPromote).
func (r *Receiver) Promote() int64 {
	r.mu.Lock()
	if r.promoted {
		e := r.epoch
		r.mu.Unlock()
		return e
	}
	r.promoted = true
	r.epoch++
	epoch := r.epoch
	conn := r.active
	r.active = nil
	r.mu.Unlock()
	r.cfg.Logf("replicate: promoting to primary at epoch %d", epoch)
	if conn != nil {
		// Best-effort synchronous fence so a live deposed primary learns
		// immediately; its lease expiry is the backstop if this write is
		// lost.
		_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_ = WriteFrame(conn, Frame{T: FrameFence, Epoch: epoch})
		_ = conn.Close()
	}
	if r.cfg.OnPromote != nil {
		r.cfg.OnPromote(epoch)
	}
	return epoch
}

// Promoted reports whether the follower has taken over, and at which
// epoch.
func (r *Receiver) Promoted() (bool, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted, r.epoch
}

// Stats snapshots the receiver.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ReceiverStats{
		Epoch:     r.epoch,
		Promoted:  r.promoted,
		Connected: r.active != nil,
		Connects:  r.connects,
		Applied:   r.applied,
		Snaps:     r.snaps,
		SilenceMS: -1,
	}
	if r.ever {
		st.SilenceMS = time.Since(r.lastFrame).Milliseconds()
	}
	return st
}

func (r *Receiver) acceptLoop() {
	defer close(r.done)
	for {
		conn, err := r.cfg.Listener.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			r.cfg.Logf("replicate: accept: %v", err)
			time.Sleep(50 * time.Millisecond)
			continue
		}
		go r.handle(conn)
	}
}

// promoteLoop self-promotes after PromoteAfter of primary silence, once a
// primary has connected at least once.
func (r *Receiver) promoteLoop() {
	tick := time.NewTicker(r.cfg.PromoteAfter / 4)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
		}
		r.mu.Lock()
		fire := r.ever && !r.promoted && !r.closed && time.Since(r.lastFrame) > r.cfg.PromoteAfter
		silence := time.Since(r.lastFrame)
		r.mu.Unlock()
		if fire {
			r.cfg.Logf("replicate: no primary frames for %v (promote-after %v); assuming primary loss", silence.Round(time.Millisecond), r.cfg.PromoteAfter)
			r.Promote()
			return
		}
	}
}

// readDeadline bounds how long a silent connection may hold resources.
func (r *Receiver) readDeadline() time.Duration {
	if r.cfg.PromoteAfter > 0 {
		return r.cfg.PromoteAfter
	}
	return time.Minute
}

// handle runs one primary connection through handshake and stream.
func (r *Receiver) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(r.readDeadline()))
	br := bufio.NewReader(conn)
	if err := ReadMagic(br); err != nil {
		r.cfg.Logf("replicate: %s: bad magic: %v", conn.RemoteAddr(), err)
		return
	}
	hello, err := ReadFrame(br)
	if err != nil || hello.T != FrameHello {
		r.cfg.Logf("replicate: %s: bad hello (%v)", conn.RemoteAddr(), err)
		return
	}

	r.mu.Lock()
	switch {
	case r.closed:
		r.mu.Unlock()
		return
	case r.promoted || hello.Epoch < r.epoch:
		// A deposed primary (or one from a past epoch): fence it so it
		// stops admitting, never ack it.
		epoch := r.epoch
		r.mu.Unlock()
		r.cfg.Logf("replicate: fencing %s (its epoch %d, ours %d)", conn.RemoteAddr(), hello.Epoch, epoch)
		_ = WriteMagic(conn)
		_ = WriteFrame(conn, Frame{T: FrameFence, Epoch: epoch})
		return
	case hello.Shards != r.cfg.Applier.Shards():
		r.mu.Unlock()
		r.cfg.Logf("replicate: %s runs %d shards, we run %d — refusing stream", conn.RemoteAddr(), hello.Shards, r.cfg.Applier.Shards())
		return
	}
	if hello.Epoch > r.epoch {
		r.epoch = hello.Epoch
	}
	if r.active != nil {
		// A newer primary connection replaces the old stream (e.g. the
		// primary re-dialed before its dead conn timed out here).
		_ = r.active.Close()
	}
	r.active = conn
	r.connects++
	r.ever = true
	r.lastFrame = time.Now()
	epoch := r.epoch
	r.mu.Unlock()

	drop := func() {
		r.mu.Lock()
		if r.active == conn {
			r.active = nil
		}
		r.mu.Unlock()
	}
	defer drop()

	if err := WriteMagic(conn); err != nil {
		return
	}
	ack := Frame{T: FrameHelloAck, Epoch: epoch, Next: r.cfg.Applier.NextSeqs()}
	if err := WriteFrame(conn, ack); err != nil {
		return
	}
	r.cfg.Logf("replicate: primary %s attached (epoch %d, cursors %v)", conn.RemoteAddr(), hello.Epoch, ack.Next)

	for {
		_ = conn.SetReadDeadline(time.Now().Add(r.readDeadline()))
		f, err := ReadFrame(br)
		if err != nil {
			r.cfg.Logf("replicate: stream from %s ended: %v", conn.RemoteAddr(), err)
			return
		}
		r.mu.Lock()
		if r.active != conn || r.promoted {
			r.mu.Unlock()
			return
		}
		r.lastFrame = time.Now()
		epoch = r.epoch
		r.mu.Unlock()
		if f.Epoch < epoch {
			_ = WriteFrame(conn, Frame{T: FrameFence, Epoch: epoch})
			return
		}

		switch f.T {
		case FrameHeartbeat:
		case FrameRecs:
			if f.Shard >= r.cfg.Applier.Shards() {
				r.cfg.Logf("replicate: %s: recs for shard %d of %d", conn.RemoteAddr(), f.Shard, r.cfg.Applier.Shards())
				return
			}
			for i, rec := range f.Recs {
				seq := f.Seq + int64(i)
				if err := r.cfg.Applier.ApplyReplicated(f.Shard, seq, rec); err != nil {
					r.cfg.Logf("replicate: apply shard %d seq %d: %v", f.Shard, seq, err)
					return
				}
				r.mu.Lock()
				r.applied++
				r.mu.Unlock()
			}
		case FrameSnap:
			if f.Shard >= r.cfg.Applier.Shards() {
				r.cfg.Logf("replicate: %s: snap for shard %d of %d", conn.RemoteAddr(), f.Shard, r.cfg.Applier.Shards())
				return
			}
			if err := r.cfg.Applier.ApplyReplicatedSnap(f.Shard, f.Recs[0]); err != nil {
				r.cfg.Logf("replicate: apply snap shard %d through seq %d: %v", f.Shard, f.Seq, err)
				return
			}
			r.mu.Lock()
			r.applied++
			r.snaps++
			r.mu.Unlock()
		default:
			r.cfg.Logf("replicate: %s: unexpected %q frame on an attached stream", conn.RemoteAddr(), f.T)
			return
		}
		// Ack every frame — applied batches advance the cursors,
		// heartbeat acks renew the primary's lease.
		_ = conn.SetWriteDeadline(time.Now().Add(r.readDeadline()))
		if err := WriteFrame(conn, Frame{T: FrameAck, Epoch: epoch, Next: r.cfg.Applier.NextSeqs()}); err != nil {
			return
		}
	}
}
