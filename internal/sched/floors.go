package sched

import "fmt"

// WithFloors makes any scheduler valid for non-preemptive jobs: every
// job's allotment floor (processors pinned by in-flight multi-step tasks)
// is granted first, and the wrapped scheduler partitions only the residual
// capacity over the residual desires. For unit-task workloads (all floors
// zero) the wrapper is the identity.
//
// The wrapper also extends the inner scheduler's stability report (Stable)
// to the hold law: when every floor-bearing job in a round is HELD —
// desire equals floor in every category, so its residual desire is zero
// and the inner scheduler effectively does not see it — the inner
// stability analysis of the residual system applies verbatim, and the held
// rows' per-step allotments are their frozen floors. StableHorizon then
// forwards the inner horizon, and LeapTotals fills held rows with n×floor.
// Rounds where some floor-bearing job is NOT held report horizon 0: its
// residual desire shifts as leases finish, which the inner analysis cannot
// vouch for.
//
// This is the standard way two-level systems retrofit malleable-job
// schedulers onto non-preemptive tasks; experiment E16 measures what the
// lost reallocation freedom costs against the paper's bounds.
type floored struct {
	inner Scheduler
	// lastFloors records whether the most recent Allot/AllotInto saw any
	// non-zero floor; lastHeldOnly whether every floor-bearing job in that
	// call was held (residual desire zero everywhere). Together they decide
	// whether the inner stability report may be forwarded.
	lastFloors   bool
	lastHeldOnly bool

	// Scratch reused across calls, so the engine's allocation-free hot
	// path stays allocation-free through the wrapper.
	residual  []JobView
	desireBuf []int
	capsBuf   []int
	innerMat  Matrix
}

// WithFloors wraps inner; see the type comment.
func WithFloors(inner Scheduler) Scheduler { return &floored{inner: inner} }

// Name implements Scheduler.
func (f *floored) Name() string { return f.inner.Name() + "+floors" }

// Allot implements Scheduler. The result is freshly allocated; hot paths
// use AllotInto.
func (f *floored) Allot(t int64, jobs []JobView, caps []int) [][]int {
	var m Matrix
	dst := m.Shape(len(jobs), len(caps))
	f.AllotInto(t, jobs, caps, dst)
	return dst
}

// AllotInto implements IntoAllotter: grant floors, let the inner scheduler
// partition the residual capacity over the residual desires, and add the
// floors back.
func (f *floored) AllotInto(t int64, jobs []JobView, caps []int, dst [][]int) {
	any, heldOnly := false, true
	for _, j := range jobs {
		if j.Floor == nil {
			continue
		}
		for a, v := range j.Floor {
			if v > 0 {
				any = true
			}
			if j.Desire[a] > v {
				heldOnly = false
			}
		}
	}
	f.lastFloors, f.lastHeldOnly = any, any && heldOnly
	if !any {
		f.innerInto(t, jobs, caps, dst)
		return
	}

	residual, residualCaps := f.project(jobs, caps)
	f.innerInto(t, residual, residualCaps, dst)
	for i, j := range jobs {
		if j.Floor != nil {
			for a, fl := range j.Floor {
				dst[i][a] += fl
			}
		}
	}
}

// innerInto writes the inner scheduler's allotment into dst, via its
// IntoAllotter fast path when available.
func (f *floored) innerInto(t int64, jobs []JobView, caps []int, dst [][]int) {
	if ia, ok := f.inner.(IntoAllotter); ok {
		ia.AllotInto(t, jobs, caps, dst)
		return
	}
	out := f.inner.Allot(t, jobs, caps)
	if len(out) != len(jobs) {
		panic(fmt.Sprintf("sched: scheduler %q returned %d rows for %d jobs", f.inner.Name(), len(out), len(jobs)))
	}
	for i := range out {
		copy(dst[i], out[i])
	}
}

// project builds, in reused scratch, the residual system the inner
// scheduler sees: desires minus floors (clamped at zero, so held jobs
// vanish from every category) and capacities minus the pinned processors.
// The views are valid until the next project call.
func (f *floored) project(jobs []JobView, caps []int) ([]JobView, []int) {
	k := len(caps)
	if cap(f.desireBuf) < len(jobs)*k {
		f.desireBuf = make([]int, len(jobs)*k)
	}
	if cap(f.residual) < len(jobs) {
		f.residual = make([]JobView, len(jobs))
	}
	if cap(f.capsBuf) < k {
		f.capsBuf = make([]int, k)
	}
	residual := f.residual[:len(jobs)]
	residualCaps := f.capsBuf[:k]
	copy(residualCaps, caps)
	for i, j := range jobs {
		d := f.desireBuf[i*k : (i+1)*k : (i+1)*k]
		copy(d, j.Desire)
		if j.Floor != nil {
			for a, fl := range j.Floor {
				d[a] -= fl
				if d[a] < 0 {
					d[a] = 0
				}
				residualCaps[a] -= fl
			}
		}
		residual[i] = JobView{ID: j.ID, Desire: d}
	}
	for a, c := range residualCaps {
		if c < 0 {
			panic(fmt.Sprintf("sched: category %d floors exceed capacity %d — jobs hold more processors than exist", a+1, caps[a]))
		}
	}
	return residual, residualCaps
}

// StableHorizon implements Stable. The inner report forwards when the last
// round was floor-free (the wrapper was the identity) or held-only (the
// inner scheduler saw the held jobs with zero residual desire, so its
// analysis of the residual system is unaffected by them; the engine
// separately bounds the window by each held job's HoldFor). A round with
// an unheld floor reports 0.
func (f *floored) StableHorizon() int64 {
	if f.lastFloors && !f.lastHeldOnly {
		return 0
	}
	if s, ok := f.inner.(Stable); ok {
		return s.StableHorizon()
	}
	return 0
}

// LeapTotals implements Stable. Only called after StableHorizon reported
// > 0, which implies the inner scheduler is Stable and the last round was
// floor-free or held-only. In the held-only case the residual system is
// rebuilt exactly as AllotInto saw it, the inner scheduler fills the
// residual totals, and every floored row gains n×floor — the per-step
// allotment a held job receives on each covered step.
func (f *floored) LeapTotals(t int64, jobs []JobView, caps []int, n int64, dst [][]int) {
	inner := f.inner.(Stable)
	if !f.lastFloors {
		inner.LeapTotals(t, jobs, caps, n, dst)
		return
	}
	residual, residualCaps := f.project(jobs, caps)
	inner.LeapTotals(t, residual, residualCaps, n, dst)
	for i, j := range jobs {
		if j.Floor != nil {
			for a, fl := range j.Floor {
				dst[i][a] += fl * int(n)
			}
		}
	}
}

// JobsDone forwards completions.
func (f *floored) JobsDone(ids []int) {
	if c, ok := f.inner.(Completer); ok {
		c.JobsDone(ids)
	}
}

// SnapshotState forwards to the inner scheduler: the wrapper itself holds
// no cross-step state (lastFloors is re-derived every round), so the
// encoding is byte-identical to the unwrapped scheduler's — checkpoints
// taken before a deployment wrapped its scheduler still restore.
func (f *floored) SnapshotState() ([]byte, error) {
	s, ok := f.inner.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("sched: scheduler %q does not support state snapshots", f.inner.Name())
	}
	return s.SnapshotState()
}

// RestoreState mirrors SnapshotState.
func (f *floored) RestoreState(data []byte) error {
	s, ok := f.inner.(Snapshotter)
	if !ok {
		return fmt.Errorf("sched: scheduler %q does not support state snapshots", f.inner.Name())
	}
	return s.RestoreState(data)
}

var (
	_ Scheduler    = (*floored)(nil)
	_ IntoAllotter = (*floored)(nil)
	_ Stable       = (*floored)(nil)
	_ Completer    = (*floored)(nil)
	_ Snapshotter  = (*floored)(nil)
)
