package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestSampleHistExactFields pins the exact-statistics contract: N, Min,
// Max, Mean and StdDev from SampleHist.Summary equal Summarize over the raw
// sample bit-for-bit.
func TestSampleHistExactFields(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var h SampleHist
	var raw []float64
	for i := 0; i < 5000; i++ {
		v := math.Floor(r.ExpFloat64() * 100)
		h.Observe(v)
		raw = append(raw, v)
	}
	got, want := h.Summary(), Summarize(raw)
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("exact fields diverge: got n=%d min=%v max=%v, want n=%d min=%v max=%v",
			got.N, got.Min, got.Max, want.N, want.Min, want.Max)
	}
	if got.Mean != want.Mean {
		t.Fatalf("mean diverges: got %v, want %v", got.Mean, want.Mean)
	}
	if math.Abs(got.StdDev-want.StdDev) > 1e-9*math.Max(1, want.StdDev) {
		t.Fatalf("stddev diverges: got %v, want %v", got.StdDev, want.StdDev)
	}
}

// TestSampleHistQuantileError pins the documented quantile error: each
// reported percentile is within one ~19% log bucket of the true order
// statistic, across distributions a response-time sample actually takes.
func TestSampleHistQuantileError(t *testing.T) {
	dists := map[string]func(r *rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return math.Floor(r.Float64() * 1000) },
		"exp":       func(r *rand.Rand) float64 { return math.Floor(r.ExpFloat64() * 50) },
		"bimodal":   func(r *rand.Rand) float64 { return float64(10 + 990*(r.Intn(2))) },
		"heavytail": func(r *rand.Rand) float64 { return math.Floor(math.Pow(r.Float64(), -1.5)) },
	}
	for name, gen := range dists {
		r := rand.New(rand.NewSource(42))
		var h SampleHist
		var raw []float64
		for i := 0; i < 20000; i++ {
			v := gen(r)
			h.Observe(v)
			raw = append(raw, v)
		}
		got := h.Summary()
		want := Summarize(raw)
		check := func(stat string, g, w float64) {
			// One bucket is a factor of 2^(1/4) ≈ 1.19; allow 25% relative
			// error to absorb interpolation differences at bucket edges, plus
			// a small absolute floor for near-zero percentiles.
			if math.Abs(g-w) > 0.25*w+1 {
				t.Errorf("%s %s: got %v, want %v (>25%% off)", name, stat, g, w)
			}
		}
		check("p50", got.P50, want.P50)
		check("p90", got.P90, want.P90)
		check("p99", got.P99, want.P99)
	}
}

// TestSampleHistMergeClone pins that Merge equals observing the union and
// Clone is independent of its source.
func TestSampleHistMergeClone(t *testing.T) {
	var a, b, all SampleHist
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := math.Floor(r.Float64() * 500)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	m := a.Clone()
	m.Merge(&b)
	if got, want := m.Summary(), all.Summary(); got != want {
		t.Fatalf("merge diverges from union: got %+v, want %+v", got, want)
	}
	before := a.Summary()
	c := a.Clone()
	c.Observe(1e9)
	if got := a.Summary(); got != before {
		t.Fatalf("clone mutation leaked into source: %+v vs %+v", got, before)
	}
}

// TestSampleHistEmpty pins zero-value behavior.
func TestSampleHistEmpty(t *testing.T) {
	var h SampleHist
	if got := h.Summary(); got != (Summary{}) {
		t.Fatalf("empty summary = %+v, want zero", got)
	}
	var o SampleHist
	h.Merge(&o)
	if h.N() != 0 {
		t.Fatalf("merging empties produced %d samples", h.N())
	}
}
