package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/moldable"
	"krad/internal/sched"
	"krad/internal/sim"
)

// moldTestConfig is testConfig with the floor layer moldable jobs need.
func moldTestConfig(k int, caps ...int) Config {
	cfg := testConfig(k, caps...)
	cfg.Sim.Scheduler = sched.WithFloors(core.NewKRAD(k))
	return cfg
}

// moldBody builds a valid two-category moldable submission body.
func moldBody(name string) submitRequest {
	return submitRequest{Mold: &moldable.Spec{
		K:    2,
		Name: name,
		Tasks: []moldable.TaskSpec{
			{Cat: 1, Work: 6, Max: 4, Curve: moldable.CurveSpec{Type: moldable.CurvePowerLaw, Alpha: 0.5}},
			{Cat: 2, Work: 8, Max: 2, Curve: moldable.CurveSpec{Type: moldable.CurveAmdahl, Serial: 0.25}},
			{Cat: 1, Work: 3, Max: 1, Curve: moldable.CurveSpec{Type: moldable.CurvePowerLaw, Alpha: 1}},
		},
		Edges: [][2]int{{0, 1}, {1, 2}},
	}}
}

// postBody POSTs an arbitrary JSON-encodable body and returns status +
// decoded error message (if any).
func postBody(t *testing.T, url, path string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("non-JSON response %q", data)
	}
	return resp.StatusCode, out
}

// TestHTTPSubmitMoldable is the moldable end-to-end acceptance path:
// submit a moldable spec over HTTP, watch it run to completion on a live
// step loop, and read its family tag back from the status endpoint.
func TestHTTPSubmitMoldable(t *testing.T) {
	_, ts := startHTTP(t, moldTestConfig(2, 3, 3))

	code, out := postBody(t, ts.URL, "/v1/jobs", moldBody("api-mold"))
	if code != http.StatusCreated {
		t.Fatalf("submit status %d: %v", code, out)
	}
	id := int(out["id"].(float64))
	waitFor(t, "moldable job completion", func() bool {
		return getJob(t, ts.URL, id).State == "done"
	})
	st := getJob(t, ts.URL, id)
	if st.Family != "moldable" {
		t.Fatalf("job family = %q, want moldable", st.Family)
	}
	// Chain spans in optimistic durations: ceil(6/s(4)) + ceil(8/s(2)) +
	// 3 = 3 + 5 + 3.
	if st.Span != 11 {
		t.Fatalf("span %d, want 11", st.Span)
	}
	if st.Completion < int64(st.Span) {
		t.Fatalf("completion %d is below the span %d", st.Completion, st.Span)
	}
}

// TestHTTPSubmitMoldableValidation pins the located 400s: malformed
// curves and ill-formed bodies must name the offending task and never
// reach the engine.
func TestHTTPSubmitMoldableValidation(t *testing.T) {
	_, ts := startHTTP(t, moldTestConfig(2, 3, 3))
	badCurve := moldBody("bad")
	badCurve.Mold.Tasks[1].Curve = moldable.CurveSpec{Type: moldable.CurvePowerLaw, Alpha: 1.7}
	both := moldBody("both")
	both.Graph = dag.UniformChain(2, 2, 1)
	wrongK := moldBody("wrong-k")
	wrongK.Mold.K = 3

	cases := []struct {
		name string
		body any
		want string
	}{
		{"bad-curve", badCurve, "task 1: curve: powerlaw alpha 1.7"},
		{"graph-and-mold", both, "exactly one"},
		{"neither", submitRequest{}, "no graph"},
		{"cyclic", submitRequest{Mold: &moldable.Spec{K: 1, Tasks: []moldable.TaskSpec{
			{Cat: 1, Work: 1, Max: 1, Curve: moldable.CurveSpec{Type: moldable.CurvePowerLaw, Alpha: 1}},
			{Cat: 1, Work: 1, Max: 1, Curve: moldable.CurveSpec{Type: moldable.CurvePowerLaw, Alpha: 1}},
		}, Edges: [][2]int{{0, 1}, {1, 0}}}}, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := postBody(t, ts.URL, "/v1/jobs", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%v)", code, out)
			}
			msg, _ := out["error"].(string)
			if !strings.Contains(msg, tc.want) {
				t.Fatalf("error %q does not contain %q", msg, tc.want)
			}
		})
	}
	// K mismatch is caught at admission (engine-level), still a 400.
	code, out := postBody(t, ts.URL, "/v1/jobs", wrongK)
	if code != http.StatusBadRequest {
		t.Fatalf("k-mismatch status %d, want 400 (%v)", code, out)
	}
}

// TestHTTPBatchMixedFamilies submits one batch holding a graph job and a
// moldable job; both must admit atomically and run to completion through
// the same engine.
func TestHTTPBatchMixedFamilies(t *testing.T) {
	_, ts := startHTTP(t, moldTestConfig(2, 3, 3))
	batch := batchRequest{Jobs: []submitRequest{
		{Graph: dag.UniformChain(2, 4, 1)},
		moldBody("batched-mold"),
	}}
	code, out := postBody(t, ts.URL, "/v1/jobs/batch", batch)
	if code != http.StatusCreated {
		t.Fatalf("batch status %d: %v", code, out)
	}
	rawIDs := out["ids"].([]any)
	ids := make([]int, len(rawIDs))
	for i, v := range rawIDs {
		ids[i] = int(v.(float64))
	}
	if len(ids) != 2 {
		t.Fatalf("batch admitted %d jobs, want 2", len(ids))
	}
	waitFor(t, "mixed batch completion", func() bool {
		for _, id := range ids {
			if getJob(t, ts.URL, id).State != "done" {
				return false
			}
		}
		return true
	})
	if fam := getJob(t, ts.URL, ids[0]).Family; fam != "dag" {
		t.Fatalf("graph job family %q, want dag", fam)
	}
	if fam := getJob(t, ts.URL, ids[1]).Family; fam != "moldable" {
		t.Fatalf("moldable job family %q, want moldable", fam)
	}
	// A bad job anywhere in the batch rejects the whole batch with a
	// located error.
	bad := batchRequest{Jobs: []submitRequest{
		{Graph: dag.UniformChain(2, 2, 1)},
		{Mold: &moldable.Spec{K: 2}},
	}}
	code, out = postBody(t, ts.URL, "/v1/jobs/batch", bad)
	if code != http.StatusBadRequest {
		t.Fatalf("bad batch status %d, want 400", code)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "batch job 1") {
		t.Fatalf("batch error %q does not locate job 1", msg)
	}
}

// TestRestartReplaysMoldable is the journaled-daemon version of the
// moldable path: admissions (moldable and graph), steps and a restart,
// after which every job's state must be reconstructed bit-identically
// from the versioned admit records.
func TestRestartReplaysMoldable(t *testing.T) {
	cfg := moldTestConfig(2, 3, 3)
	cfg.Journal = &JournalConfig{Dir: t.TempDir()}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mold := moldBody("journal-mold").Mold
	src, err := moldable.FromSpec(*mold)
	if err != nil {
		t.Fatal(err)
	}
	id0, err := svc.Submit(sim.JobSpec{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	stepShard(t, svc, 0)
	stepShard(t, svc, 0)
	id1, err := svc.Submit(sim.JobSpec{Graph: dag.UniformChain(2, 5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		stepShard(t, svc, 0)
	}
	before := svc.Stats()
	beforeJobs := map[int]sim.JobStatus{}
	for _, id := range []int{id0, id1} {
		st, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		beforeJobs[id] = st
	}
	drainAndClose(t, svc)

	restarted := moldTestConfig(2, 3, 3)
	restarted.Journal = &JournalConfig{Dir: cfg.Journal.Dir}
	svc2, err := New(restarted)
	if err != nil {
		t.Fatal(err)
	}
	defer drainAndClose(t, svc2)
	after := svc2.Stats()
	if after.Now != before.Now || after.Submitted != before.Submitted ||
		after.Completed != before.Completed || after.Active != before.Active {
		t.Fatalf("restarted stats %+v, want %+v", after, before)
	}
	for id, want := range beforeJobs {
		got, ok := svc2.Job(id)
		if !ok {
			t.Fatalf("job %d lost across restart", id)
		}
		if got.Phase != want.Phase || got.Completion != want.Completion || got.Family != want.Family {
			t.Fatalf("job %d: restarted %+v, want %+v", id, got, want)
		}
	}
}
