package sim

import (
	"reflect"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
)

// TestAdmitBatchMatchesSerialAdmit checks that one AdmitBatch call is
// observationally identical to the same specs admitted one Admit at a
// time: same IDs, same schedule, same completions.
func TestAdmitBatchMatchesSerialAdmit(t *testing.T) {
	mkCfg := func() Config {
		return Config{
			K: 3, Caps: []int{2, 2, 2}, Scheduler: core.NewKRAD(3),
			Pick: dag.PickFIFO, ValidateAllotments: true,
		}
	}
	specs := onlineSpecs()

	serial, err := NewEngine(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	serialIDs := make([]int, len(specs))
	for i, s := range specs {
		id, err := serial.Admit(s)
		if err != nil {
			t.Fatalf("serial admit %d: %v", i, err)
		}
		serialIDs[i] = id
	}

	batch, err := NewEngine(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	batchIDs, err := batch.AdmitBatch(specs)
	if err != nil {
		t.Fatalf("AdmitBatch: %v", err)
	}
	if !reflect.DeepEqual(serialIDs, batchIDs) {
		t.Fatalf("IDs differ: serial %v batch %v", serialIDs, batchIDs)
	}

	for serial.Remaining() > 0 || batch.Remaining() > 0 {
		si, err := serial.Step()
		if err != nil {
			t.Fatal(err)
		}
		bi, err := batch.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(si, bi) {
			t.Fatalf("step diverged: serial %+v batch %+v", si, bi)
		}
	}
	sr, br := serial.Result(), batch.Result()
	if sr.Makespan != br.Makespan || !reflect.DeepEqual(sr.Jobs, br.Jobs) {
		t.Fatalf("results diverged: serial %+v batch %+v", sr, br)
	}
}

// TestAdmitBatchAllOrNothing checks the atomicity contract: a batch with
// one invalid spec admits nothing and leaves the engine untouched.
func TestAdmitBatchAllOrNothing(t *testing.T) {
	cfg := Config{
		K: 2, Caps: []int{2, 2}, Scheduler: core.NewKRAD(2),
		Pick: dag.PickFIFO, ValidateAllotments: true,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Admit(JobSpec{Graph: dag.Singleton(2, 1)}); err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot()

	bad := []JobSpec{
		{Graph: dag.Singleton(2, 1)},
		{Graph: dag.Singleton(3, 1)}, // K mismatch: invalidates the batch
		{Graph: dag.Singleton(2, 2)},
	}
	ids, err := eng.AdmitBatch(bad)
	if err == nil {
		t.Fatalf("batch with K-mismatched member admitted: ids %v", ids)
	}
	if after := eng.Snapshot(); !reflect.DeepEqual(before, after) {
		t.Errorf("failed batch mutated engine: before %+v after %+v", before, after)
	}

	// Past releases are rejected batch-wide too.
	for eng.Remaining() > 0 {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Now() == 0 {
		t.Fatal("clock did not advance")
	}
	if _, err := eng.AdmitBatch([]JobSpec{
		{Graph: dag.Singleton(2, 1), Release: eng.Now()},
		{Graph: dag.Singleton(2, 1), Release: eng.Now() - 1},
	}); err == nil {
		t.Error("past-release batch member accepted")
	}
	if got := eng.Snapshot().Admitted; got != 1 {
		t.Errorf("admitted %d jobs, want 1", got)
	}

	// The engine still works after rejected batches: a valid batch admits
	// with sequential IDs continuing from the serial admission.
	ids, err = eng.AdmitBatch([]JobSpec{
		{Graph: dag.Singleton(2, 1), Release: eng.Now()},
		{Graph: dag.Singleton(2, 2), Release: eng.Now() + 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []int{1, 2}) {
		t.Errorf("batch IDs %v, want [1 2]", ids)
	}
	if ids, err = eng.AdmitBatch(nil); err != nil || ids != nil {
		t.Errorf("empty batch: ids %v err %v", ids, err)
	}
	for eng.Remaining() > 0 {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.Snapshot().Completed; got != 3 {
		t.Errorf("completed %d, want 3", got)
	}
}
