package main

import (
	"context"
	"fmt"
	"testing"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sched"
	"krad/internal/server"
	"krad/internal/sim"
)

// Fleet-drain benchmarks: the work-stealing headline number. One hot
// placement key hashes every submission onto a single shard of an 8-shard
// fleet; the arrival stream is 4x that shard's capacity, so its backlog
// grows without bound unless peers help. The steal=off/steal=on pair
// measures wall-clock to drain the whole stream — the recorded
// BENCH_PR10.json ratio is the "skewed backlogs drain at fleet speed"
// claim, and kradbench -compare gates it against future regressions.
//
// Arrivals carry staggered future releases (one per virtual step) rather
// than landing all at once: a backlogged shard's clock grinds through
// active work, so not-yet-released jobs sit in the pending queue where
// thieves can take them — exactly the shape a sustained hot-key stream
// (kradreplay -skew) produces.
const (
	fleetDrainShards = 8
	fleetDrainJobs   = 2000
	fleetDrainSpan   = 4
)

func fleetDrainBench(steal bool) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := server.Config{
				Sim: sim.Config{
					K: 1, Caps: []int{1}, Scheduler: core.NewKRAD(1), Pick: dag.PickFIFO,
				},
				Shards:       fleetDrainShards,
				NewScheduler: func() sched.Scheduler { return core.NewKRAD(1) },
				Placement:    server.PlaceHash,
				// The bound apportions across shards; the hot shard must
				// admit the entire stream.
				MaxInFlight: 2 * fleetDrainShards * fleetDrainJobs,
				Steal:        steal,
			}
			svc, err := server.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < fleetDrainJobs; j++ {
				spec := sim.JobSpec{
					Graph:   dag.UniformChain(1, fleetDrainSpan, 1),
					Release: int64(j + 1),
				}
				if _, err := svc.SubmitKeyed("hot", spec); err != nil {
					b.Fatal(err)
				}
			}
			svc.Start()
			for svc.Stats().Completed < fleetDrainJobs {
				if err := svc.Err(); err != nil {
					b.Fatal(err)
				}
				time.Sleep(200 * time.Microsecond)
			}
			if steal {
				if st := svc.Stats(); st.Steal == nil || st.Steal.Stolen == 0 {
					b.Fatal("steal-on drain stole nothing; the benchmark is not measuring stealing")
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err = svc.Close(ctx)
			cancel()
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(fleetDrainJobs), "jobs/op")
	}
}

// fleetBenches is appended to the micro-benchmark registry by
// runJSONBenchmarks.
func fleetBenches() []microBench {
	var benches []microBench
	for _, steal := range []bool{false, true} {
		steal := steal
		benches = append(benches, microBench{
			name: fmt.Sprintf("BenchmarkFleetDrain/skew=hot/shards=%d/steal=%v", fleetDrainShards, steal),
			fn:   fleetDrainBench(steal),
		})
	}
	return benches
}
