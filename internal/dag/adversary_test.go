package dag

import (
	"testing"
)

func TestNewAdversarialValidation(t *testing.T) {
	cases := []struct {
		k, m int
		p    []int
	}{
		{1, 1, []int{4}},       // K too small
		{2, 0, []int{2, 2}},    // m too small
		{2, 1, []int{2}},       // wrong cap count
		{2, 1, []int{2, 0}},    // zero processors
		{3, 1, []int{8, 2, 4}}, // P1 > PK violates PK = Pmax
	}
	for _, c := range cases {
		if _, err := NewAdversarial(c.k, c.m, c.p); err == nil {
			t.Errorf("NewAdversarial(%d,%d,%v) accepted", c.k, c.m, c.p)
		}
	}
}

func TestAdversarialStructure(t *testing.T) {
	for _, c := range []struct{ k, m, p int }{
		{2, 2, 3}, {3, 2, 4}, {4, 1, 2}, {5, 3, 2},
	} {
		p := make([]int, c.k)
		for i := range p {
			p[i] = c.p
		}
		adv, err := NewAdversarial(c.k, c.m, p)
		if err != nil {
			t.Fatalf("K=%d m=%d: %v", c.k, c.m, err)
		}
		g := adv.BigJob
		if err := g.Validate(); err != nil {
			t.Fatalf("K=%d m=%d: big job invalid: %v", c.k, c.m, err)
		}
		// Span must be exactly K + m·PK − 1 (paper, Section 4).
		want := c.k + c.m*c.p - 1
		if g.Span() != want {
			t.Errorf("K=%d m=%d: span %d, want %d", c.k, c.m, g.Span(), want)
		}
		// Work per middle level α: m·Pα·PK.
		for a := 2; a <= c.k-1; a++ {
			if got := g.Work(Category(a)); got != c.m*c.p*c.p {
				t.Errorf("K=%d m=%d: level %d work %d, want %d", c.k, c.m, a, got, c.m*c.p*c.p)
			}
		}
		// Level K: mass + chain = m·PK(PK−1)+1 + m·PK−1 = m·PK².
		if got := g.Work(Category(c.k)); got != c.m*c.p*c.p {
			t.Errorf("K=%d m=%d: level K work %d, want %d", c.k, c.m, got, c.m*c.p*c.p)
		}
		// Job count n = m·P1·PK.
		if adv.NumJobs() != c.m*c.p*c.p {
			t.Errorf("K=%d m=%d: %d jobs, want %d", c.k, c.m, adv.NumJobs(), c.m*c.p*c.p)
		}
	}
}

func TestAdversarialClosedForms(t *testing.T) {
	adv, err := NewAdversarial(3, 4, []int{2, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := adv.OptimalMakespan(), 3+4*4-1; got != want {
		t.Errorf("OptimalMakespan = %d, want %d", got, want)
	}
	if got, want := adv.WorstCaseMakespan(), 4*3*4+4*4-4; got != want {
		t.Errorf("WorstCaseMakespan = %d, want %d", got, want)
	}
	if got, want := adv.LimitRatio(), 3.0+1-1.0/4; got != want {
		t.Errorf("LimitRatio = %v, want %v", got, want)
	}
	if adv.FiniteRatio() >= adv.LimitRatio() {
		t.Errorf("finite ratio %v should approach limit %v from below", adv.FiniteRatio(), adv.LimitRatio())
	}
}

func TestAdversarialFiniteRatioConverges(t *testing.T) {
	var prev float64
	for _, m := range []int{1, 2, 4, 8, 16} {
		adv, err := NewAdversarial(3, m, []int{2, 2, 4})
		if err != nil {
			t.Fatal(err)
		}
		r := adv.FiniteRatio()
		if r <= prev {
			t.Errorf("m=%d: ratio %v not increasing (prev %v)", m, r, prev)
		}
		prev = r
	}
	// At m=16 the ratio should be within 5% of the limit.
	adv, _ := NewAdversarial(3, 16, []int{2, 2, 4})
	if adv.LimitRatio()-adv.FiniteRatio() > 0.05*adv.LimitRatio() {
		t.Errorf("m=16 ratio %v too far from limit %v", adv.FiniteRatio(), adv.LimitRatio())
	}
}

func TestAdversarialJobSetOrder(t *testing.T) {
	adv, err := NewAdversarial(2, 1, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	last := adv.JobSet(true)
	if len(last) != adv.NumJobs() {
		t.Fatalf("JobSet size %d, want %d", len(last), adv.NumJobs())
	}
	if last[len(last)-1] != adv.BigJob {
		t.Error("bigJobLast=true did not place big job last")
	}
	first := adv.JobSet(false)
	if first[0] != adv.BigJob {
		t.Error("bigJobLast=false did not place big job first")
	}
	for _, g := range last[:len(last)-1] {
		if g.NumTasks() != 1 || g.Category(0) != 1 {
			t.Fatal("singleton malformed")
		}
	}
}

func TestHomogeneous(t *testing.T) {
	if _, err := NewHomogeneous(0, 1); err == nil {
		t.Error("accepted p=0")
	}
	h, err := NewHomogeneous(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.ChainJob.Span() != 8 {
		t.Errorf("chain span %d, want 8", h.ChainJob.Span())
	}
	if h.LimitRatio() != 2-0.25 {
		t.Errorf("LimitRatio = %v", h.LimitRatio())
	}
	set := h.JobSet(true)
	if set[len(set)-1] != h.ChainJob {
		t.Error("chain not last")
	}
	if len(set) != h.NumSingletons+1 {
		t.Errorf("set size %d", len(set))
	}
	if h.OptimalMakespan() < 8 {
		t.Errorf("optimal %d below chain length", h.OptimalMakespan())
	}
}
