package server

import (
	"errors"
	"fmt"
	"sync"

	"krad/internal/dag"
	"krad/internal/fairshare"
	"krad/internal/journal"
	"krad/internal/sim"
)

// ErrOverQuota means the submitting tenant's fair share of the fleet
// admission bound is exhausted: the service sheds that tenant's work
// (HTTP 429) while under-quota tenants keep admitting. Unlike
// ErrQueueFull the fleet is not necessarily full — the capacity is
// reserved for other tenants.
var ErrOverQuota = errors.New("server: tenant over fair-share quota")

// fairController owns the queue tree and the per-tenant admission
// counters. The tree is not goroutine-safe, so every resolution and
// rebalance runs under mu; the usage ledgers themselves live per shard
// (each under its shard's lock and virtual clock) and are aggregated
// here at rebalance time.
type fairController struct {
	mu       sync.Mutex
	tree     *fairshare.Tree
	admitted map[string]int64 // leaf path → jobs admitted
	shed     map[string]int64 // leaf path → submissions shed over-quota
}

func newFairController(cfg fairshare.Config) (*fairController, error) {
	tree, err := fairshare.New(cfg)
	if err != nil {
		return nil, err
	}
	return &fairController{
		tree:     tree,
		admitted: make(map[string]int64),
		shed:     make(map[string]int64),
	}, nil
}

// recordAdmit counts a committed admission against the leaf.
func (fc *fairController) recordAdmit(path string, n int) {
	fc.mu.Lock()
	fc.admitted[path] += int64(n)
	fc.mu.Unlock()
}

// fairAdmit is the fair-share admission gate: it resolves the tenant
// header to a leaf, rebalances the fleet bound over the active leaves
// (with the requester forced active, so a first submission is never shed
// for lack of a share), and rejects with ErrOverQuota when the leaf's
// in-flight work would exceed its share. Returns the resolved leaf path
// for downstream accounting. Only called when fairness is enabled.
//
// Concurrent submissions may both pass the gate before either lands on a
// shard — the transient overshoot is bounded by the caller count and the
// per-shard admission bound still caps the fleet total.
func (s *Service) fairAdmit(tenant string, n int) (string, error) {
	fc := s.fair
	fc.mu.Lock()
	defer fc.mu.Unlock()
	leaf := fc.tree.Ensure(tenant)
	states := s.fairStates(leaf.Path)
	shares := fc.tree.Shares(states, s.cfg.MaxInFlight)
	if states[leaf.Path].InFlight+n > shares[leaf.Path] {
		fc.shed[leaf.Path] += int64(n)
		return "", fmt.Errorf("%w: %s", ErrOverQuota, leaf.Path)
	}
	return leaf.Path, nil
}

// fairStates aggregates every leaf's fleet-wide live state from the
// shards' ledgers: in-flight counts sum, usage sums with each shard's
// accumulator decayed to that shard's own virtual clock. requesting, when
// non-empty, marks the leaf whose admission triggered the rebalance.
// Callers hold fc.mu (lock order: controller, then each shard briefly).
func (s *Service) fairStates(requesting string) map[string]fairshare.State {
	states := make(map[string]fairshare.State)
	for _, sh := range s.shards {
		sh.fairCollect(states)
	}
	if requesting != "" {
		st := states[requesting]
		st.Requesting = true
		states[requesting] = st
	}
	return states
}

// TenantStats is one fair-share leaf's slice of Stats.Tenants.
type TenantStats struct {
	// Path is the leaf's queue-tree path (e.g. "acme/ml").
	Path string `json:"path"`
	// InFlight is the leaf's admitted-but-unfinished jobs across shards.
	InFlight int `json:"in_flight"`
	// Share is the leaf's current slot bound from the latest rebalance.
	Share int `json:"share"`
	// Usage is the leaf's decayed usage summed across shards.
	Usage float64 `json:"usage"`
	// Admitted and Shed count the leaf's admitted jobs and over-quota
	// rejections since startup.
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
}

// tenantStats snapshots per-tenant fair-share state in deterministic leaf
// order, or nil when fairness is off — keeping the fairness-off Stats
// encoding bit-identical to pre-fairness builds.
func (s *Service) tenantStats() []TenantStats {
	fc := s.fair
	if fc == nil {
		return nil
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	states := s.fairStates("")
	shares := fc.tree.Shares(states, s.cfg.MaxInFlight)
	leaves := fc.tree.Leaves()
	out := make([]TenantStats, 0, len(leaves))
	for _, l := range leaves {
		st := states[l.Path]
		out = append(out, TenantStats{
			Path:     l.Path,
			InFlight: st.InFlight,
			Share:    shares[l.Path],
			Usage:    st.Usage,
			Admitted: fc.admitted[l.Path],
			Shed:     fc.shed[l.Path],
		})
	}
	return out
}

// shardFair is the per-shard slice of the fairness configuration: enough
// to run the usage ledger without reaching back into the controller.
type shardFair struct {
	halfLife    int64
	defaultPath string
}

// armFair enables the shard's fair ledger. Called from New before any
// step loop or journal replay exists, so no locking is needed.
func (sh *shard) armFair(halfLife int64, defaultPath string) {
	sh.fair = &shardFair{halfLife: halfLife, defaultPath: defaultPath}
	sh.fairUsage = make(map[string]*fairshare.Usage)
	sh.fairInFlight = make(map[string]int)
	sh.fairJobs = make(map[int]string)
}

// fairCollect folds the shard's ledger into a fleet-wide state map,
// decaying usage to this shard's current virtual step.
func (sh *shard) fairCollect(states map[string]fairshare.State) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.fair == nil {
		return
	}
	now := sh.eng.Now()
	for path, u := range sh.fairUsage {
		st := states[path]
		st.Usage += u.At(now, sh.fair.halfLife)
		states[path] = st
	}
	for path, n := range sh.fairInFlight {
		st := states[path]
		st.InFlight += n
		states[path] = st
	}
}

// fairAccrueLocked charges a committed admission to the tenant's ledger:
// usage grows by cost at the shard's current step, the jobs are tracked
// for in-flight accounting. Called with the shard lock held, after the
// admission is durable; a no-op when fairness is off or the caller did
// not route through the fair admission gate (direct shard tests).
func (sh *shard) fairAccrueLocked(tenant string, ids []int, cost float64) {
	if sh.fair == nil || tenant == "" {
		return
	}
	u := sh.fairUsage[tenant]
	if u == nil {
		u = &fairshare.Usage{}
		sh.fairUsage[tenant] = u
	}
	u.Add(sh.eng.Now(), sh.fair.halfLife, cost)
	sh.fairInFlight[tenant] += len(ids)
	for _, id := range ids {
		sh.fairJobs[id] = tenant
	}
}

// fairForgetLocked drops a finished or cancelled job from the in-flight
// ledger (accrued usage stays — it decays). Called with the shard lock
// held; a no-op for jobs the ledger never tracked.
func (sh *shard) fairForgetLocked(id int) {
	if sh.fairJobs == nil {
		return
	}
	tenant, ok := sh.fairJobs[id]
	if !ok {
		return
	}
	delete(sh.fairJobs, id)
	if n := sh.fairInFlight[tenant]; n > 1 {
		sh.fairInFlight[tenant] = n - 1
	} else {
		delete(sh.fairInFlight, tenant)
	}
}

// fairStateLocked snapshots the shard's ledger for a journal record
// (fresh maps, so the journal never aliases live state).
func (sh *shard) fairStateLocked() journal.FairState {
	st := journal.FairState{V: 1, HalfLife: sh.fair.halfLife}
	if len(sh.fairUsage) > 0 {
		st.Usage = make(map[string]fairshare.Usage, len(sh.fairUsage))
		for k, u := range sh.fairUsage {
			st.Usage[k] = *u
		}
	}
	if len(sh.fairJobs) > 0 {
		st.Jobs = make(map[int]string, len(sh.fairJobs))
		for k, v := range sh.fairJobs {
			st.Jobs[k] = v
		}
	}
	return st
}

// specsCost is a batch's admission cost in the usage ledger.
func specsCost(specs []sim.JobSpec) float64 {
	c := 0.0
	for _, sp := range specs {
		c += graphCost(sp.Graph)
	}
	return c
}

// recordCost recomputes an admit/batch record's cost during replay; the
// record carries the same graphs the live admission charged, so the
// replayed accrual is bit-identical.
func recordCost(rec journal.Record) float64 {
	c := 0.0
	for _, j := range rec.Jobs {
		c += graphCost(j.Graph)
	}
	return c
}

// graphCost is one job's cost: its total work in task-steps (the timed
// work sum for duration-weighted graphs), so a tenant submitting heavy
// DAGs accrues usage proportionally faster than one submitting small
// ones. Graph-free jobs (non-journalable test shapes) cost 1.
func graphCost(g *dag.Graph) float64 {
	if g == nil {
		return 1
	}
	if g.Timed() {
		w := 0
		for _, v := range g.TimedWorkVector() {
			w += v
		}
		return float64(w)
	}
	return float64(g.TotalWork())
}

// fairReplayObserver rebuilds a shard's fair ledger during journal
// replay: ledger restores from fair/snap records, accruals from
// tenant-tagged admit records (at the same engine clock the live server
// charged them), in-flight forgetting from step and cancel records.
// Runs with the shard lock held (attachJournal), before any step loop.
type fairReplayObserver struct{ sh *shard }

func (o fairReplayObserver) Fair(st journal.FairState) error {
	sh := o.sh
	if st.HalfLife != sh.fair.halfLife {
		return fmt.Errorf("server: journal fair half-life %d does not match the configured %d — decayed usage would diverge (restart with the original half-life, or remove the journal)", st.HalfLife, sh.fair.halfLife)
	}
	sh.fairUsage = make(map[string]*fairshare.Usage, len(st.Usage))
	for k, u := range st.Usage {
		uc := u
		sh.fairUsage[k] = &uc
	}
	sh.fairJobs = make(map[int]string, len(st.Jobs))
	sh.fairInFlight = make(map[string]int)
	for id, tenant := range st.Jobs {
		sh.fairJobs[id] = tenant
		sh.fairInFlight[tenant]++
	}
	return nil
}

func (o fairReplayObserver) Admitted(rec journal.Record, ids []int, now int64) {
	tenant := rec.Tenant
	if tenant == "" {
		// Pre-fairness journal records: attribute to the default leaf, the
		// same resolution a headerless live submission gets.
		tenant = o.sh.fair.defaultPath
	}
	o.sh.fairAccrueLocked(tenant, ids, recordCost(rec))
}

func (o fairReplayObserver) Cancelled(id int) { o.sh.fairForgetLocked(id) }

func (o fairReplayObserver) Stepped(info sim.StepInfo) {
	for _, id := range info.Completed {
		o.sh.fairForgetLocked(id)
	}
}
