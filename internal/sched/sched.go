// Package sched defines the scheduling interface of the K-resource model
// (Section 2 of the paper) and shared helpers. A Scheduler observes, at
// each time step, only the identities and instantaneous per-category
// desires of the active jobs — never release times, parallelism profiles,
// or remaining work — and returns integer allotments bounded by the
// per-category processor counts. That restriction is what "online
// non-clairvoyant" means; clairvoyant baselines must opt in explicitly via
// the Clairvoyant interface.
package sched

import (
	"encoding/json"
	"fmt"
	"math"
)

// JobView is the scheduler-visible snapshot of one active job at one step.
type JobView struct {
	// ID is the engine-assigned job identifier. IDs are assigned in
	// submission order, so ascending ID is ascending arrival order — the
	// queue order RAD's round-robin uses.
	ID int
	// Desire[α−1] is d(Ji, α, t): the number of ready α-tasks.
	Desire []int
	// Floor[α−1] is the job's non-preemptive allotment floor: processors
	// occupied by in-flight multi-step tasks that cannot be taken away
	// this step. Nil for unit-task jobs (every floor zero). Valid
	// allotments satisfy allot ≥ floor; use WithFloors to make any
	// scheduler floor-respecting.
	Floor []int
}

// TotalDesire returns Σα Desire[α].
func (j JobView) TotalDesire() int {
	n := 0
	for _, d := range j.Desire {
		n += d
	}
	return n
}

// Scheduler computes processor allotments each step.
type Scheduler interface {
	// Name identifies the algorithm in traces and reports.
	Name() string
	// Allot returns, for each job in jobs (same order), an allotment
	// vector indexed by α−1, such that for every category α the column
	// sum is at most caps[α−1]. jobs contains exactly the active
	// (released, uncompleted) jobs at step t, in ascending ID order.
	// Implementations must not retain jobs or the returned slices.
	Allot(t int64, jobs []JobView, caps []int) [][]int
}

// Unbounded is the StableHorizon value meaning "no scheduler-imposed leap
// limit". The engine still bounds leaps by pending releases, the caller's
// step budget, and MaxSteps.
const Unbounded int64 = math.MaxInt64

// Stable is an optional Scheduler capability powering the engine's
// event-leap.
//
// StableHorizon reports how many additional consecutive steps after the
// most recent Allot call are in a stable regime: the scheduler's
// cross-step state (marks, rotations, rng) does not change, every job's
// desire stays strictly positive, and the per-step allotments are
// computable in closed form by LeapTotals. The report assumes the
// engine's leap law over those steps: (a) the active job set does not
// change, and (b) every job's per-category desire decreases by exactly
// its allotment each step (the regime profile-backed jobs are in
// mid-phase). 0 means "do not leap this round"; Unbounded means no
// scheduler-imposed limit. The value is consumed immediately after Allot
// and invalidated by the next Allot call.
//
// LeapTotals accumulates into dst — shaped like the Allot result (one row
// per job, len(caps) columns) and zeroed by the caller — the TOTAL
// allotment each job receives over the n steps t..t+n−1, where t, jobs
// and caps are exactly the arguments of that most recent Allot call and
// 1 ≤ n ≤ StableHorizon()+1 (the call's own step plus the horizon). Each
// covered step's column sums equal the Allot result's column sums, so
// per-step aggregates (traces, utilization) reproduce exactly.
//
// Per-step bound: over the covered window, no job's allotment at any
// single step exceeds its Allot-result entry by more than one, and stays
// zero wherever that entry is zero. (DEQ's rotating remainder moves one
// bonus processor between deprived jobs; nothing moves more.) The engine
// feeds this bound to DAG-backed runtimes (sim.StableRuntime) to verify
// that no frontier level can drain mid-window; implementations whose
// per-step allotments can vary by more than one must report horizon 0 for
// the affected window instead.
//
// Law (b) is the DRAIN law — the contract unit-task runtimes satisfy. Its
// complement, the HOLD law (a job whose desire is pinned at its
// non-preemptive floor receives exactly the floor each covered step), is
// not part of this interface: WithFloors layers it on top by projecting
// held jobs out of the inner scheduler's view and re-adding their frozen
// floors, so inner implementations only ever reason about draining jobs.
type Stable interface {
	StableHorizon() int64
	LeapTotals(t int64, jobs []JobView, caps []int, n int64, dst [][]int)
}

// CategoryStable mirrors Stable for per-category schedulers, under the
// same law restricted to the category's α-active jobs.
type CategoryStable interface {
	StableHorizon() int64
	LeapTotals(t int64, jobs []CatJob, p int, n int64, dst []int)
}

// IntoAllotter is an optional Scheduler extension for allocation-free
// stepping: AllotInto behaves exactly like Allot but writes the matrix
// into caller-owned storage. dst has one row per job, each row of
// len(caps); rows are fully overwritten. Callers own dst and may reuse it
// across calls (see Matrix); implementations must not retain it.
type IntoAllotter interface {
	AllotInto(t int64, jobs []JobView, caps []int, dst [][]int)
}

// CategoryIntoAllotter mirrors IntoAllotter for per-category schedulers:
// dst has len(jobs) entries and is fully overwritten.
type CategoryIntoAllotter interface {
	AllotInto(t int64, jobs []CatJob, p int, dst []int)
}

// Matrix is a reusable allotment matrix backed by a single flat []int, for
// hot paths that call AllotWith every step without allocating.
type Matrix struct {
	rows [][]int
	back []int
}

// Shape returns an n×k matrix of zeros, reusing the backing storage when
// capacity allows. The returned rows alias the Matrix and are invalidated
// by the next Shape call.
func (m *Matrix) Shape(n, k int) [][]int {
	if cap(m.back) < n*k {
		m.back = make([]int, n*k, n*k+n*k/2+16)
	}
	m.back = m.back[:n*k]
	for i := range m.back {
		m.back[i] = 0
	}
	if cap(m.rows) < n {
		m.rows = make([][]int, n, n+n/2+8)
	}
	m.rows = m.rows[:n]
	for i := range m.rows {
		m.rows[i] = m.back[i*k : (i+1)*k : (i+1)*k]
	}
	return m.rows
}

// AllotWith invokes s.AllotInto when implemented, reusing m's storage, and
// falls back to plain Allot otherwise. The result is valid until m's next
// Shape call (into path) or owned by the caller (fallback path).
func AllotWith(s Scheduler, t int64, jobs []JobView, caps []int, m *Matrix) [][]int {
	if ia, ok := s.(IntoAllotter); ok {
		dst := m.Shape(len(jobs), len(caps))
		ia.AllotInto(t, jobs, caps, dst)
		return dst
	}
	return s.Allot(t, jobs, caps)
}

// Completer is implemented by stateful schedulers (such as RAD's
// round-robin marking) that want to drop per-job state when jobs finish.
// The engine calls JobsDone after each step with the IDs of jobs that
// completed during the step.
type Completer interface {
	JobsDone(ids []int)
}

// Snapshotter is implemented by schedulers whose cross-step state can be
// captured and later restored into a fresh instance. It exists for
// durability: journal compaction (internal/journal) replaces a replay
// prefix with a checkpoint, which is only sound when the scheduler's
// state at the checkpoint — round-robin rotations, marks, queue
// positions — travels with it. Schedulers that do not implement it are
// still journaled and replayed exactly; their journals are just never
// compacted. SnapshotState must return a self-contained encoding;
// RestoreState must accept exactly what SnapshotState produced and may
// assume a freshly constructed receiver.
type Snapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState([]byte) error
}

// CategorySnapshotter mirrors Snapshotter for per-category schedulers.
type CategorySnapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState([]byte) error
}

// Oracle exposes clairvoyant per-job information. Only baselines labelled
// clairvoyant receive one; the algorithms under study never see it.
type Oracle interface {
	// RemainingWork returns the unexecuted task count of the job per
	// category (indexed α−1).
	RemainingWork(jobID int) []int
	// ReleaseTime returns the job's release time.
	ReleaseTime(jobID int) int64
}

// Clairvoyant is implemented by schedulers that require an Oracle. The
// engine injects it before the run starts.
type Clairvoyant interface {
	SetOracle(Oracle)
}

// ValidateAllotments checks the Section 2 validity conditions on a
// scheduler's output: one allotment row per job, rows shaped like caps,
// non-negative entries, and per-category column sums within capacity.
// It returns a descriptive error on the first violation.
func ValidateAllotments(jobs []JobView, caps []int, allot [][]int) error {
	if len(allot) != len(jobs) {
		return fmt.Errorf("sched: %d allotment rows for %d jobs", len(allot), len(jobs))
	}
	sums := make([]int, len(caps))
	for i, row := range allot {
		if len(row) != len(caps) {
			return fmt.Errorf("sched: job %d allotment row has %d categories, want %d", jobs[i].ID, len(row), len(caps))
		}
		for a, v := range row {
			if v < 0 {
				return fmt.Errorf("sched: job %d category %d negative allotment %d", jobs[i].ID, a+1, v)
			}
			if jobs[i].Floor != nil && v < jobs[i].Floor[a] {
				return fmt.Errorf("sched: job %d category %d allotment %d below non-preemptive floor %d", jobs[i].ID, a+1, v, jobs[i].Floor[a])
			}
			sums[a] += v
		}
	}
	for a, s := range sums {
		if s > caps[a] {
			return fmt.Errorf("sched: category %d total allotment %d exceeds capacity %d", a+1, s, caps[a])
		}
	}
	return nil
}

// CatJob is the single-category projection of a JobView used by
// per-category schedulers.
type CatJob struct {
	ID     int
	Desire int
}

// CategoryScheduler allocates the processors of one resource category among
// the jobs that currently desire them. RAD is a CategoryScheduler; K-RAD is
// K of them glued together by PerCategory.
type CategoryScheduler interface {
	Name() string
	// Allot returns one allotment per job (same order). jobs contains
	// exactly the α-active jobs (desire > 0) in ascending ID order; p is
	// the category's processor count.
	Allot(t int64, jobs []CatJob, p int) []int
}

// CategoryCompleter mirrors Completer for per-category schedulers.
type CategoryCompleter interface {
	JobsDone(ids []int)
}

// PerCategory lifts K independent CategoryScheduler instances (one per
// resource category) into a full Scheduler. This is exactly the structure
// of K-RAD: "assigns one RAD scheduler to each category α of processors".
type PerCategory struct {
	name string
	cats []CategoryScheduler
	// Scratch reused across AllotInto calls (single-simulation use only,
	// like the category schedulers themselves).
	catJobs []CatJob
	idx     []int
	catOut  []int
}

// NewPerCategory builds a Scheduler from per-category schedulers. The slice
// index is α−1.
func NewPerCategory(name string, cats []CategoryScheduler) *PerCategory {
	return &PerCategory{name: name, cats: cats}
}

// Name returns the composite scheduler's name.
func (p *PerCategory) Name() string { return p.name }

// Category returns the scheduler responsible for category α (1-based),
// mainly for tests and ablations.
func (p *PerCategory) Category(alpha int) CategoryScheduler { return p.cats[alpha-1] }

// Allot projects the jobs onto each category (keeping only α-active jobs,
// preserving ID order), delegates to that category's scheduler, and
// reassembles the full allotment matrix. The result is freshly allocated
// (callers may retain it); hot paths use AllotInto via AllotWith instead.
func (p *PerCategory) Allot(t int64, jobs []JobView, caps []int) [][]int {
	allot := make([][]int, len(jobs))
	rows := make([]int, 0, len(jobs)*len(caps))
	if len(jobs)*len(caps) > 0 {
		rows = make([]int, len(jobs)*len(caps))
	}
	for i := range jobs {
		allot[i] = rows[i*len(caps) : (i+1)*len(caps) : (i+1)*len(caps)]
	}
	p.AllotInto(t, jobs, caps, allot)
	return allot
}

// AllotInto implements IntoAllotter: the same projection as Allot, writing
// into dst (one row per job, each row len(caps), fully overwritten) and
// asking each category scheduler for its CategoryIntoAllotter fast path
// before falling back to the allocating Allot.
func (p *PerCategory) AllotInto(t int64, jobs []JobView, caps []int, dst [][]int) {
	if len(caps) != len(p.cats) {
		panic(fmt.Sprintf("sched: PerCategory %q built for K=%d but given %d capacities", p.name, len(p.cats), len(caps)))
	}
	catJobs := p.catJobs[:0]
	idx := p.idx[:0]
	for a := range p.cats {
		catJobs = catJobs[:0]
		idx = idx[:0]
		for i, j := range jobs {
			dst[i][a] = 0
			if j.Desire[a] > 0 {
				catJobs = append(catJobs, CatJob{ID: j.ID, Desire: j.Desire[a]})
				idx = append(idx, i)
			}
		}
		var out []int
		if ia, ok := p.cats[a].(CategoryIntoAllotter); ok {
			if cap(p.catOut) < len(catJobs) {
				p.catOut = make([]int, len(catJobs), len(catJobs)*2+8)
			}
			out = p.catOut[:len(catJobs)]
			ia.AllotInto(t, catJobs, caps[a], out)
		} else {
			out = p.cats[a].Allot(t, catJobs, caps[a])
			if len(out) != len(catJobs) {
				panic(fmt.Sprintf("sched: category %d scheduler %q returned %d allotments for %d jobs", a+1, p.cats[a].Name(), len(out), len(catJobs)))
			}
		}
		for j, v := range out {
			dst[idx[j]][a] = v
		}
	}
	p.catJobs, p.idx = catJobs[:0], idx[:0]
}

// StableHorizon implements Stable: the composite is stable for as long as
// every category is, so the horizon is the minimum over categories. A
// category scheduler that does not report stability pins the horizon to 0.
func (p *PerCategory) StableHorizon() int64 {
	h := Unbounded
	for _, c := range p.cats {
		cs, ok := c.(CategoryStable)
		if !ok {
			return 0
		}
		if ch := cs.StableHorizon(); ch < h {
			h = ch
			if h == 0 {
				return 0
			}
		}
	}
	return h
}

// LeapTotals implements Stable by re-projecting jobs per category (the
// same projection Allot used — jobs must be the same slice contents) and
// delegating to each category's CategoryStable. Only called when
// StableHorizon reported ≥ n−1, which implies every category implements
// CategoryStable.
func (p *PerCategory) LeapTotals(t int64, jobs []JobView, caps []int, n int64, dst [][]int) {
	catJobs := p.catJobs[:0]
	idx := p.idx[:0]
	for a := range p.cats {
		catJobs = catJobs[:0]
		idx = idx[:0]
		for i, j := range jobs {
			if j.Desire[a] > 0 {
				catJobs = append(catJobs, CatJob{ID: j.ID, Desire: j.Desire[a]})
				idx = append(idx, i)
			}
		}
		if cap(p.catOut) < len(catJobs) {
			p.catOut = make([]int, len(catJobs), len(catJobs)*2+8)
		}
		out := p.catOut[:len(catJobs)]
		for i := range out {
			out[i] = 0
		}
		p.cats[a].(CategoryStable).LeapTotals(t, catJobs, caps[a], n, out)
		for j, v := range out {
			dst[idx[j]][a] = v
		}
	}
	p.catJobs, p.idx = catJobs[:0], idx[:0]
}

// JobsDone forwards completion notifications to every per-category
// scheduler that cares.
func (p *PerCategory) JobsDone(ids []int) {
	for _, c := range p.cats {
		if cc, ok := c.(CategoryCompleter); ok {
			cc.JobsDone(ids)
		}
	}
}

// SnapshotState captures every per-category scheduler's state, failing if
// any category scheduler does not implement CategorySnapshotter — partial
// checkpoints would silently desynchronize replay.
func (p *PerCategory) SnapshotState() ([]byte, error) {
	states := make([][]byte, len(p.cats))
	for i, c := range p.cats {
		cs, ok := c.(CategorySnapshotter)
		if !ok {
			return nil, fmt.Errorf("sched: category %d scheduler %q does not support state snapshots", i+1, c.Name())
		}
		st, err := cs.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("sched: category %d scheduler %q: %w", i+1, c.Name(), err)
		}
		states[i] = st
	}
	return json.Marshal(states)
}

// RestoreState distributes a SnapshotState encoding back over the
// per-category schedulers.
func (p *PerCategory) RestoreState(data []byte) error {
	var states [][]byte
	if err := json.Unmarshal(data, &states); err != nil {
		return fmt.Errorf("sched: decode per-category state: %w", err)
	}
	if len(states) != len(p.cats) {
		return fmt.Errorf("sched: state has %d categories, scheduler %q has %d", len(states), p.name, len(p.cats))
	}
	for i, c := range p.cats {
		cs, ok := c.(CategorySnapshotter)
		if !ok {
			return fmt.Errorf("sched: category %d scheduler %q does not support state snapshots", i+1, c.Name())
		}
		if err := cs.RestoreState(states[i]); err != nil {
			return fmt.Errorf("sched: category %d scheduler %q: %w", i+1, c.Name(), err)
		}
	}
	return nil
}

var (
	_ Scheduler    = (*PerCategory)(nil)
	_ Completer    = (*PerCategory)(nil)
	_ Snapshotter  = (*PerCategory)(nil)
	_ IntoAllotter = (*PerCategory)(nil)
	_ Stable       = (*PerCategory)(nil)
)
