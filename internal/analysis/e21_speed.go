package analysis

import (
	"fmt"

	"krad/internal/metrics"
	"krad/internal/sim"
	"krad/internal/workload"
)

// RunE21 places the schedulers in the speed-augmentation framework the
// EQUI literature uses (Kalyanasundaram–Pruhs; Edmonds): give the online
// algorithm processors s× faster than the optimum it is compared to, and
// watch the competitive ratio collapse. Each row runs a scheduler at
// speed s ∈ {1, 2, 3} on a heavy batched workload and reports total
// response against the SPEED-1 lower bound (the adversary keeps unit
// speed). Expected shape: every scheduler's ratio drops sharply with s —
// at s = 2 the fair schedulers sit near or below 1.0, the empirical face
// of "EQUI is O(1)-competitive with (2+ε)-speed"; makespan ratios behave
// the same through the work term.
func RunE21(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E21",
		Title:  "Speed augmentation: s-speed schedulers vs the unit-speed bound",
		Header: []string{"scheduler", "speed", "makespan", "ms ratio (vs s=1 LB)", "total resp", "resp ratio (vs s=1 LB)"},
	}
	const k = 2
	caps := []int{2, 2}
	jobs := 40
	if opts.Quick {
		jobs = 20
	}
	specs, err := workload.Mix{
		K: k, Jobs: jobs, MinSize: 3, MaxSize: 30, Seed: opts.seed(),
	}.Generate()
	if err != nil {
		return nil, err
	}

	// Unit-speed lower bounds: fixed denominators for every row.
	base, err := sim.Run(sim.Config{
		K: k, Caps: caps, Scheduler: mustScheduler("k-rad", k),
	}, specs)
	if err != nil {
		return nil, err
	}
	msLB := float64(metrics.MakespanLowerBound(base))
	respLB := metrics.ResponseLowerBound(base)

	for _, name := range []string{"k-rad", "equi", "laps", "rr-only"} {
		for _, s := range []int{1, 2, 3} {
			res, err := sim.Run(sim.Config{
				K: k, Caps: caps, Scheduler: mustScheduler(name, k),
				Speed: s, ValidateAllotments: true,
			}, specs)
			if err != nil {
				return nil, fmt.Errorf("E21 %s speed %d: %w", name, s, err)
			}
			t.AddRow(name, s, res.Makespan,
				float64(res.Makespan)/msLB,
				res.TotalResponse(),
				float64(res.TotalResponse())/respLB)
		}
	}
	t.AddNote("denominators are the Section 4/6 lower bounds of the UNIT-speed instance, so a ratio below 1 means the augmented scheduler beats anything unit-speed processors could do — the standard resource-augmentation reading")
	return t, nil
}
