package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"krad/internal/dag"
	"krad/internal/sim"
)

// submitRequest is the POST /v1/jobs body: a K-DAG in the internal/dag
// JSON encoding plus an optional absolute virtual release time (0 or
// omitted means "now").
type submitRequest struct {
	Graph   *dag.Graph `json:"graph"`
	Release int64      `json:"release,omitempty"`
}

// jobJSON is the wire form of a job's lifecycle status.
type jobJSON struct {
	ID          int    `json:"id"`
	State       string `json:"state"`
	Release     int64  `json:"release"`
	Completion  int64  `json:"completion,omitempty"`
	Response    int64  `json:"response,omitempty"`
	CancelledAt int64  `json:"cancelled_at,omitempty"`
	Work        []int  `json:"work"`
	Span        int    `json:"span"`
}

func toJobJSON(st sim.JobStatus) jobJSON {
	return jobJSON{
		ID:          st.ID,
		State:       st.Phase.String(),
		Release:     st.Release,
		Completion:  st.Completion,
		Response:    st.Response(),
		CancelledAt: st.CancelledAt,
		Work:        st.Work,
		Span:        st.Span,
	}
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs      submit a dag-encoded job     → 201 {id, release}
//	GET    /v1/jobs/{id} job lifecycle status         → 200 jobJSON
//	DELETE /v1/jobs/{id} cancel a pending/active job  → 200 jobJSON
//	GET    /v1/events    SSE stream of step events
//	GET    /metrics      Prometheus text exposition
//	GET    /healthz      liveness + service stats
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job JSON: %v", err)
		return
	}
	if req.Graph == nil {
		writeError(w, http.StatusBadRequest, "job has no graph")
		return
	}
	id, err := s.Submit(sim.JobSpec{Graph: req.Graph, Release: req.Release})
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, _ := s.Job(id)
	writeJSON(w, http.StatusCreated, map[string]any{"id": id, "release": st.Release})
}

// jobID parses the {id} path segment.
func jobID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	st, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	writeJSON(w, http.StatusOK, toJobJSON(st))
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	if _, ok := s.Job(id); !ok {
		writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	if err := s.Cancel(id); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	st, _ := s.Job(id)
	writeJSON(w, http.StatusOK, toJobJSON(st))
}

// handleEvents streams step events as Server-Sent Events until the client
// disconnects or the service shuts down. Each event is
//
//	event: step
//	data: {"step":..,"executed":[..],...}
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, cancel := s.Subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: step\ndata: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	status := "ok"
	if err := s.Err(); err != nil {
		status = "degraded: " + err.Error()
	} else if st.Draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "stats": st})
}
