package moldable

import (
	"math"
	"strings"
	"testing"
)

// TestCurveFamilies is the table-driven model-assumption check for every
// curve the wire format can express: s(1) = 1, monotone, concave, never
// superlinear — verified pointwise here, independently of CheckCurve, and
// then through CheckCurve itself.
func TestCurveFamilies(t *testing.T) {
	cases := []struct {
		name  string
		curve Curve
	}{
		{"powerlaw-0.3", PowerLaw{Alpha: 0.3}},
		{"powerlaw-0.5", PowerLaw{Alpha: 0.5}},
		{"powerlaw-0.9", PowerLaw{Alpha: 0.9}},
		{"powerlaw-linear", PowerLaw{Alpha: 1}},
		{"amdahl-perfect", Amdahl{Serial: 0}},
		{"amdahl-0.05", Amdahl{Serial: 0.05}},
		{"amdahl-0.5", Amdahl{Serial: 0.5}},
		{"amdahl-serial", Amdahl{Serial: 1}},
	}
	const pmax = 256
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if s1 := tc.curve.Speedup(1); math.Abs(s1-1) > curveEps {
				t.Fatalf("s(1) = %v, want 1", s1)
			}
			prev, prevInc := 1.0, math.Inf(1)
			for p := 2; p <= pmax; p++ {
				s := tc.curve.Speedup(p)
				if s < prev-curveEps {
					t.Fatalf("s(%d) = %v < s(%d) = %v: not monotone", p, s, p-1, prev)
				}
				if s > float64(p)+curveEps {
					t.Fatalf("s(%d) = %v > p: superlinear", p, s)
				}
				if inc := s - prev; inc > prevInc+curveEps {
					t.Fatalf("increment at p=%d grew (%v after %v): not concave", p, inc, prevInc)
				} else {
					prevInc = inc
				}
				prev = s
			}
			if err := CheckCurve(tc.curve, pmax); err != nil {
				t.Fatalf("CheckCurve: %v", err)
			}
			// Round-trip through the wire spec preserves the curve.
			rt, err := tc.curve.Spec().Curve()
			if err != nil {
				t.Fatalf("Spec().Curve(): %v", err)
			}
			for p := 1; p <= 16; p++ {
				if got, want := rt.Speedup(p), tc.curve.Speedup(p); got != want {
					t.Fatalf("round-tripped s(%d) = %v, want %v", p, got, want)
				}
			}
		})
	}
}

// badCurve violates concavity: a convex s(p) = p²/pmax-ish ramp.
type badCurve struct{}

func (badCurve) Speedup(p int) float64 {
	if p == 1 {
		return 1
	}
	return 1 + float64(p*p)/64
}
func (badCurve) Spec() CurveSpec { return CurveSpec{} }

// offsetCurve breaks the s(1) = 1 anchor.
type offsetCurve struct{}

func (offsetCurve) Speedup(p int) float64 { return float64(p) / 2 }
func (offsetCurve) Spec() CurveSpec       { return CurveSpec{} }

// nonMonotone dips at p = 3.
type nonMonotone struct{}

func (nonMonotone) Speedup(p int) float64 {
	if p == 3 {
		return 1.5
	}
	return math.Min(float64(p), 2)
}
func (nonMonotone) Spec() CurveSpec { return CurveSpec{} }

// TestCheckCurveRejects feeds CheckCurve curves that break each model
// assumption and asserts the failure is detected and named.
func TestCheckCurveRejects(t *testing.T) {
	cases := []struct {
		name string
		c    Curve
		pmax int
		want string
	}{
		{"superlinear-or-convex", badCurve{}, 16, "concave"},
		{"non-monotone", nonMonotone{}, 8, "monotone"},
		{"bad-identity", offsetCurve{}, 4, "s(1)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckCurve(tc.c, tc.pmax)
			if err == nil {
				t.Fatal("CheckCurve accepted an invalid curve")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCurveSpecValidation exercises the wire-decoding error paths.
func TestCurveSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec CurveSpec
		want string // "" = valid
	}{
		{"powerlaw-ok", CurveSpec{Type: CurvePowerLaw, Alpha: 0.5}, ""},
		{"amdahl-ok", CurveSpec{Type: CurveAmdahl, Serial: 0.25}, ""},
		{"amdahl-zero", CurveSpec{Type: CurveAmdahl}, ""},
		{"unknown-type", CurveSpec{Type: "gustafson"}, "unknown curve type"},
		{"empty-type", CurveSpec{}, "unknown curve type"},
		{"alpha-zero", CurveSpec{Type: CurvePowerLaw}, "out of range"},
		{"alpha-high", CurveSpec{Type: CurvePowerLaw, Alpha: 1.5}, "out of range"},
		{"alpha-nan", CurveSpec{Type: CurvePowerLaw, Alpha: math.NaN()}, "out of range"},
		{"serial-negative", CurveSpec{Type: CurveAmdahl, Serial: -0.1}, "out of range"},
		{"serial-high", CurveSpec{Type: CurveAmdahl, Serial: 1.5}, "out of range"},
		{"powerlaw-stray-serial", CurveSpec{Type: CurvePowerLaw, Alpha: 0.5, Serial: 0.1}, "stray serial"},
		{"amdahl-stray-alpha", CurveSpec{Type: CurveAmdahl, Serial: 0.1, Alpha: 0.5}, "stray alpha"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.spec.Curve()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid spec rejected: %v", err)
				}
				if err := CheckCurve(c, 64); err != nil {
					t.Fatalf("decoded curve violates the model: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestStepsIdentity pins the p = 1 degenerate case: on one processor every
// task runs for exactly its serial work, whatever the curve.
func TestStepsIdentity(t *testing.T) {
	curves := []Curve{PowerLaw{Alpha: 0.3}, PowerLaw{Alpha: 1}, Amdahl{Serial: 0}, Amdahl{Serial: 1}}
	for _, c := range curves {
		for _, w := range []int{1, 2, 7, 1000} {
			if got := steps(w, c, 1); got != w {
				t.Errorf("%+v: steps(%d, p=1) = %d, want %d", c.Spec(), w, got, w)
			}
		}
	}
	// Linear speedup divides evenly, rounding up.
	if got := steps(10, PowerLaw{Alpha: 1}, 4); got != 3 {
		t.Errorf("steps(10, linear, 4) = %d, want 3", got)
	}
	// Duration never drops below one step.
	if got := steps(1, PowerLaw{Alpha: 1}, 8); got != 1 {
		t.Errorf("steps(1, linear, 8) = %d, want 1", got)
	}
}

// TestStepsMonotone checks that durations never increase with more
// processors — the property the greedy molding in Execute relies on.
func TestStepsMonotone(t *testing.T) {
	curves := []Curve{PowerLaw{Alpha: 0.4}, PowerLaw{Alpha: 0.8}, Amdahl{Serial: 0.1}, Amdahl{Serial: 0.5}}
	for _, c := range curves {
		for _, w := range []int{1, 5, 33, 512} {
			prev := steps(w, c, 1)
			for p := 2; p <= 32; p++ {
				d := steps(w, c, p)
				if d > prev {
					t.Fatalf("%+v: steps(w=%d) rose from %d to %d at p=%d", c.Spec(), w, prev, d, p)
				}
				prev = d
			}
		}
	}
}

// TestUsefulProcs pins the ½-efficiency molding cap on curves with known
// closed-form answers.
func TestUsefulProcs(t *testing.T) {
	cases := []struct {
		name string
		c    Curve
		max  int
		want int
	}{
		// Linear speedup is 100% efficient: the cap is the task maximum.
		{"linear", PowerLaw{Alpha: 1}, 16, 16},
		// s(p) = √p: efficiency √p/p ≥ ½ iff p ≤ 4.
		{"sqrt", PowerLaw{Alpha: 0.5}, 16, 4},
		{"sqrt-clamped", PowerLaw{Alpha: 0.5}, 3, 3},
		// Fully serial work: s(p) = 1, so p = 2 sits exactly at ½
		// efficiency (the rule is inclusive) and p = 3 falls below.
		{"serial", Amdahl{Serial: 1}, 16, 2},
		// Perfect Amdahl is linear.
		{"amdahl-perfect", Amdahl{Serial: 0}, 16, 16},
		// Serial = 1/3: s(p)/p = 1/(p/3 + 2/3·1)… efficiency ½ at
		// s(p) = p/2 ⇒ 1/(1/3 + 2/(3p)) = p/2 ⇒ p = 4.
		{"amdahl-third", Amdahl{Serial: 1.0 / 3}, 16, 4},
		{"max-one", PowerLaw{Alpha: 0.3}, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := usefulProcs(tc.c, tc.max); got != tc.want {
				t.Fatalf("usefulProcs = %d, want %d", got, tc.want)
			}
		})
	}
	// Property: the cap is efficient, the next allotment is not.
	for _, c := range []Curve{PowerLaw{Alpha: 0.35}, PowerLaw{Alpha: 0.7}, Amdahl{Serial: 0.2}} {
		u := usefulProcs(c, 64)
		if 2*c.Speedup(u) < float64(u)-curveEps {
			t.Errorf("%+v: cap %d is below ½ efficiency", c.Spec(), u)
		}
		if u < 64 && 2*c.Speedup(u+1) >= float64(u+1)-curveEps {
			t.Errorf("%+v: cap %d is not maximal (%d still efficient)", c.Spec(), u, u+1)
		}
	}
}
