package metrics

import "math"

// SampleHist is a fixed-size replacement for an unbounded []float64 sample
// accumulator: it keeps exact N, sum, sum-of-squares, min and max itself
// (so Mean, StdDev and the extremes match Summarize bit-for-bit) and
// delegates quantiles to a LatencyHist, whose log-bucket geometry bounds
// their relative error at one ~19% bucket. A server recording one response
// time per completed job holds a few hundred words forever instead of
// growing a slice for the life of the process.
//
// Samples are dimensionless non-negative step counts here, but LatencyHist
// buckets start at 1µs; Observe scales by 1e-6 going in and Summary scales
// back coming out, which lands step counts 1..~1.3e8 inside the bucketed
// range. The zero value is ready to use; SampleHist is not concurrency-safe
// (callers already serialize response recording under the shard lock).
type SampleHist struct {
	hist  LatencyHist
	n     int
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// sampleScale maps dimensionless samples into LatencyHist's seconds domain.
const sampleScale = 1e-6

// Observe records one sample. Negative samples count as zero, mirroring
// LatencyHist.
func (h *SampleHist) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.sumSq += v * v
	h.hist.Observe(v * sampleScale)
}

// N returns the number of recorded samples.
func (h *SampleHist) N() int { return h.n }

// quantile reads a bucketed quantile back in the sample's own units,
// clamped to the exact extremes.
func (h *SampleHist) quantile(p float64) float64 {
	v := h.hist.Quantile(p) / sampleScale
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	return v
}

// Summary reports the same statistic set Summarize computes over the raw
// sample: N, Min, Max, Mean and StdDev are exact; P50/P90/P99 are bucketed
// estimates within one ~19% bucket of the true order statistics.
func (h *SampleHist) Summary() Summary {
	if h.n == 0 {
		return Summary{}
	}
	s := Summary{N: h.n, Min: h.min, Max: h.max}
	n := float64(h.n)
	s.Mean = h.sum / n
	variance := h.sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	s.P50 = h.quantile(0.50)
	s.P90 = h.quantile(0.90)
	s.P99 = h.quantile(0.99)
	return s
}

// Merge adds all of o's samples into h, exactly for the exact fields and
// bucket-wise for the quantile histogram.
func (h *SampleHist) Merge(o *SampleHist) {
	if o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	h.sumSq += o.sumSq
	h.hist.Merge(&o.hist)
}

// Clone returns an independent copy, for handing a consistent snapshot out
// from under a lock.
func (h *SampleHist) Clone() *SampleHist {
	c := &SampleHist{n: h.n, sum: h.sum, sumSq: h.sumSq, min: h.min, max: h.max}
	c.hist.Merge(&h.hist)
	return c
}

// Reset discards all samples.
func (h *SampleHist) Reset() { *h = SampleHist{} }
