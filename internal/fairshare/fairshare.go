// Package fairshare implements hierarchical multi-tenant fair-share
// accounting for the online scheduler service: a queue tree (tenant →
// project → queue) whose leaves carry a deserved quota, an over-quota
// weight, a priority class and an exponentially decayed usage history.
// The tree answers one question — given the live demand (in-flight work
// and decayed usage per leaf), how should a fixed capacity be divided? —
// and it answers deterministically: the same inputs always produce the
// same integer shares, so journal replay rebuilds the same admission
// decisions.
//
// The division runs in two passes at every tree level, mirroring
// KAI-Scheduler's queue controller in miniature:
//
//  1. Deserved pass: each active child is guaranteed its deserved quota
//     (scaled down proportionally when the level's capacity cannot cover
//     every active deserved sum).
//  2. Over-quota pass: remaining capacity is split in proportion to the
//     over-quota weights of active children. Integer remainders go to
//     the highest-priority, least-recently-hogging claimants (lowest
//     decayed usage per unit weight), which is where the time-decayed
//     history bites: between equal-weight tenants, the one that consumed
//     less recently wins the marginal slot.
//
// Inactive leaves (no in-flight work, not requesting) receive zero —
// their deserved capacity is lent to the active set and reclaimed the
// moment they return.
package fairshare

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultHalfLife is the usage decay half-life, in virtual steps, when a
// configuration does not set one.
const DefaultHalfLife = 1024

// MaxDynamicLeaves caps leaves auto-created for unknown tenant headers.
// Beyond the cap, unknown tenants collapse onto the default leaf instead
// of growing the tree without bound (headers are client-controlled).
const MaxDynamicLeaves = 1024

// NodeConfig describes one tree node. A node with children is interior
// (its quota and weight govern the split at its parent's level); a node
// without children is a leaf that tenant headers can resolve to.
type NodeConfig struct {
	// Name is one path segment (letters, digits, ., _, -).
	Name string
	// Deserved is the node's guaranteed quota in admission slots. Zero
	// means no guarantee — the node competes only for over-quota capacity.
	Deserved float64
	// Weight is the node's over-quota weight. Zero means the node never
	// receives more than its deserved quota.
	Weight float64
	// Priority orders remainder slots in the over-quota pass: higher
	// priority claims marginal capacity first.
	Priority int
	// Children, when non-empty, make this node interior.
	Children []NodeConfig
}

// Config is a whole tree specification.
type Config struct {
	// HalfLife is the usage decay half-life in virtual steps.
	// 0 means DefaultHalfLife.
	HalfLife int64
	// Default names the leaf used for requests without a tenant header
	// (path form, e.g. "acme/batch"). Empty means a leaf named "default",
	// auto-created if the tree does not define one.
	Default string
	// Nodes are the top-level tenants.
	Nodes []NodeConfig
}

// Leaf is one admissible queue: the resolution target of a tenant header
// and the unit usage is accounted against.
type Leaf struct {
	// Path is the full slash-joined path from the root, e.g. "acme/ml".
	Path string
	// Deserved, Weight and Priority mirror the NodeConfig (or the dynamic
	// defaults: Deserved 0, Weight 1, Priority 0).
	Deserved float64
	Weight   float64
	Priority int
	// Dynamic marks leaves auto-created for unknown tenant headers.
	Dynamic bool
}

// State is one leaf's live inputs to a rebalance.
type State struct {
	// InFlight is the leaf's admitted-but-unfinished job count.
	InFlight int
	// Usage is the leaf's decayed usage, brought current to the
	// rebalance instant.
	Usage float64
	// Requesting marks the leaf whose admission triggered the rebalance:
	// it counts as active even with nothing yet in flight, so a first
	// submission is never shed for lack of a share.
	Requesting bool
}

type node struct {
	name     string
	path     string
	deserved float64
	weight   float64
	priority int
	children []*node
	leaf     *Leaf // non-nil iff len(children) == 0
}

// Tree is the compiled queue tree. It is not goroutine-safe: the owner
// (the server's fairness controller) serializes access.
type Tree struct {
	halfLife int64
	root     *node
	leaves   map[string]*Leaf
	order    []*Leaf // registration order: config first, then dynamic
	def      *Leaf
	dynamic  int
}

// New compiles a Config into a Tree, creating the default leaf if the
// configuration does not define it.
func New(cfg Config) (*Tree, error) {
	hl := cfg.HalfLife
	if hl == 0 {
		hl = DefaultHalfLife
	}
	if hl < 1 {
		return nil, fmt.Errorf("fairshare: half-life %d, need ≥ 1", hl)
	}
	t := &Tree{
		halfLife: hl,
		root:     &node{},
		leaves:   make(map[string]*Leaf),
	}
	for _, nc := range cfg.Nodes {
		if err := t.build(t.root, "", nc, false); err != nil {
			return nil, err
		}
	}
	defPath := cfg.Default
	if defPath == "" {
		defPath = "default"
	}
	def, err := t.ensure(defPath)
	if err != nil {
		return nil, fmt.Errorf("fairshare: default leaf: %w", err)
	}
	t.def = def
	return t, nil
}

func (t *Tree) build(parent *node, prefix string, nc NodeConfig, dynamic bool) error {
	if err := checkSegment(nc.Name); err != nil {
		return err
	}
	if nc.Deserved < 0 || nc.Weight < 0 {
		return fmt.Errorf("fairshare: node %q: deserved and weight must be ≥ 0", nc.Name)
	}
	path := nc.Name
	if prefix != "" {
		path = prefix + "/" + nc.Name
	}
	for _, c := range parent.children {
		if c.name == nc.Name {
			return fmt.Errorf("fairshare: duplicate node %q", path)
		}
	}
	n := &node{
		name:     nc.Name,
		path:     path,
		deserved: nc.Deserved,
		weight:   nc.Weight,
		priority: nc.Priority,
	}
	parent.children = append(parent.children, n)
	if len(nc.Children) == 0 {
		n.leaf = &Leaf{
			Path:     path,
			Deserved: nc.Deserved,
			Weight:   nc.Weight,
			Priority: nc.Priority,
			Dynamic:  dynamic,
		}
		t.leaves[path] = n.leaf
		t.order = append(t.order, n.leaf)
		return nil
	}
	for _, child := range nc.Children {
		if err := t.build(n, path, child, dynamic); err != nil {
			return err
		}
	}
	return nil
}

func checkSegment(s string) error {
	if s == "" || len(s) > 64 {
		return fmt.Errorf("fairshare: path segment %q: need 1–64 characters", s)
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("fairshare: path segment %q: only letters, digits, '.', '_', '-'", s)
		}
	}
	return nil
}

// HalfLife returns the usage decay half-life in virtual steps.
func (t *Tree) HalfLife() int64 { return t.halfLife }

// Default returns the leaf for requests without a tenant header.
func (t *Tree) Default() *Leaf { return t.def }

// Leaves returns every leaf in deterministic order (configuration order,
// then dynamic creation order).
func (t *Tree) Leaves() []*Leaf { return t.order }

// Lookup returns the leaf with the exact path, if one exists.
func (t *Tree) Lookup(path string) (*Leaf, bool) {
	l, ok := t.leaves[path]
	return l, ok
}

// Ensure resolves a tenant header value to a leaf, auto-creating a
// dynamic leaf (Deserved 0, Weight 1) for unknown paths. Resolution
// rules, in order:
//
//   - "" resolves to the default leaf.
//   - An exact leaf path resolves to that leaf.
//   - A path extending an existing leaf resolves to that leaf (a
//     configured tenant absorbs its unconfigured sub-paths).
//   - A path naming an interior node resolves to that node's dynamic
//     "default" child leaf.
//   - Anything else creates a dynamic leaf along the path, until the
//     MaxDynamicLeaves cap, after which unknown tenants collapse onto
//     the default leaf.
//
// Malformed paths (bad characters, over-long, > 3 levels) resolve to the
// default leaf rather than erroring: the header is client-controlled and
// admission must stay cheap.
func (t *Tree) Ensure(path string) *Leaf {
	l, err := t.ensure(path)
	if err != nil || l == nil {
		return t.def
	}
	return l
}

func (t *Tree) ensure(path string) (*Leaf, error) {
	if path == "" {
		return t.def, nil
	}
	if l, ok := t.leaves[path]; ok {
		return l, nil
	}
	segs := strings.Split(path, "/")
	if len(segs) > 3 { // tenant → project → queue: three levels deep
		return nil, fmt.Errorf("fairshare: path %q deeper than 3 levels", path)
	}
	for _, s := range segs {
		if err := checkSegment(s); err != nil {
			return nil, err
		}
	}
	n := t.root
	prefix := ""
walk:
	for _, s := range segs {
		if n.leaf != nil {
			// A configured leaf absorbs unconfigured sub-paths.
			return n.leaf, nil
		}
		for _, c := range n.children {
			if c.name == s {
				n = c
				prefix = c.path
				continue walk
			}
		}
		// Unknown segment: extend dynamically from here.
		rest := segs[len(strings.Split(prefix, "/")):]
		if prefix == "" {
			rest = segs
		}
		return t.extend(n, prefix, rest)
	}
	// Path names an interior node: resolve to its dynamic default child.
	return t.extend(n, prefix, []string{"default"})
}

// extend grows a dynamic chain of nodes under n ending in a leaf.
func (t *Tree) extend(n *node, prefix string, segs []string) (*Leaf, error) {
	if t.dynamic >= MaxDynamicLeaves {
		return t.def, nil
	}
	nc := NodeConfig{Name: segs[len(segs)-1], Weight: 1}
	for i := len(segs) - 2; i >= 0; i-- {
		nc = NodeConfig{Name: segs[i], Weight: 1, Children: []NodeConfig{nc}}
	}
	if err := t.build(n, prefix, nc, true); err != nil {
		return nil, err
	}
	t.dynamic++
	leafPath := prefix
	if leafPath == "" {
		leafPath = strings.Join(segs, "/")
	} else {
		leafPath = prefix + "/" + strings.Join(segs, "/")
	}
	return t.leaves[leafPath], nil
}

// Shares divides capacity admission slots among the tree's leaves by
// hierarchical weighted fair share over the active set. states carries
// each leaf's live inputs (missing entries mean idle with zero usage);
// the result maps every leaf path to its integer bound, summing to
// exactly capacity whenever at least one active leaf has over-quota
// weight at every level. The function is pure and deterministic: shares
// depend only on (tree, states, capacity), never on map iteration order.
func (t *Tree) Shares(states map[string]State, capacity int) map[string]int {
	out := make(map[string]int, len(t.leaves))
	for path := range t.leaves {
		out[path] = 0
	}
	if capacity <= 0 {
		return out
	}
	t.divide(t.root, capacity, states, out)
	return out
}

// aggregate is one child's claim at a division level.
type aggregate struct {
	n        *node
	active   bool
	deserved float64
	weight   float64
	priority int
	usage    float64
	inFlight int
}

func (t *Tree) gather(n *node, states map[string]State) aggregate {
	if n.leaf != nil {
		st := states[n.path]
		return aggregate{
			n:        n,
			active:   st.InFlight > 0 || st.Requesting,
			deserved: n.deserved,
			weight:   n.weight,
			priority: n.priority,
			usage:    st.Usage,
			inFlight: st.InFlight,
		}
	}
	agg := aggregate{n: n, deserved: n.deserved, weight: n.weight, priority: n.priority}
	var childD, childW float64
	for _, c := range n.children {
		ca := t.gather(c, states)
		agg.usage += ca.usage
		agg.inFlight += ca.inFlight
		if ca.active {
			agg.active = true
			childD += ca.deserved
			childW += ca.weight
		}
	}
	// An interior node without its own quota or weight claims on behalf
	// of its active children, so one configured level is enough.
	if agg.deserved == 0 {
		agg.deserved = childD
	}
	if agg.weight == 0 {
		agg.weight = childW
	}
	return agg
}

func (t *Tree) divide(n *node, alloc int, states map[string]State, out map[string]int) {
	if n.leaf != nil {
		out[n.path] = alloc
		return
	}
	aggs := make([]aggregate, len(n.children))
	var actives []int
	for i, c := range n.children {
		aggs[i] = t.gather(c, states)
		if aggs[i].active {
			actives = append(actives, i)
		}
	}
	grants := divideLevel(aggs, actives, alloc)
	for i, c := range n.children {
		if grants[i] > 0 {
			t.divide(c, grants[i], states, out)
		}
	}
}

// divideLevel splits alloc among the active children of one node:
// deserved pass first, over-quota pass on the remainder.
func divideLevel(aggs []aggregate, actives []int, alloc int) []int {
	grants := make([]int, len(aggs))
	if len(actives) == 0 || alloc <= 0 {
		return grants
	}
	var sumD float64
	for _, i := range actives {
		sumD += aggs[i].deserved
	}
	// Deserved pass: guarantee each active child its quota, scaled down
	// proportionally when capacity cannot cover the active deserved sum.
	remaining := alloc
	if sumD > 0 {
		scale := 1.0
		if sumD > float64(alloc) {
			scale = float64(alloc) / sumD
		}
		targets := make([]float64, len(actives))
		for k, i := range actives {
			targets[k] = aggs[i].deserved * scale
		}
		ints := apportion(targets, min(alloc, int(sumD+0.5)), func(a, b int, fa, fb float64) bool {
			return claimLess(aggs[actives[a]], aggs[actives[b]], fa, fb)
		})
		for k, i := range actives {
			grants[i] = ints[k]
			remaining -= ints[k]
		}
	}
	if remaining <= 0 {
		return grants
	}
	// Over-quota pass: split what is left in proportion to weight.
	var sumW float64
	var weighted []int // indices into actives
	for k, i := range actives {
		if aggs[i].weight > 0 {
			sumW += aggs[i].weight
			weighted = append(weighted, k)
		}
	}
	if sumW == 0 {
		return grants // strict quotas: leftover capacity stays unallocated
	}
	targets := make([]float64, len(weighted))
	for j, k := range weighted {
		targets[j] = float64(remaining) * aggs[actives[k]].weight / sumW
	}
	ints := apportion(targets, remaining, func(a, b int, fa, fb float64) bool {
		return claimLess(aggs[actives[weighted[a]]], aggs[actives[weighted[b]]], fa, fb)
	})
	for j, k := range weighted {
		grants[actives[k]] += ints[j]
	}
	return grants
}

// claimLess orders remainder claims: higher priority first, then lower
// decayed usage per unit weight, then larger fractional entitlement, then
// tree order for a total, deterministic order.
//
// Usage outranking the fractional part is what makes repeated rebalances
// converge onto the weight proportions: whoever won the marginal slot
// accrues more usage per unit weight and loses the next one, so the slot
// rotates in proportion to the fractional entitlements. Ordered by
// fraction first, the tenant with the larger fraction would win every
// rebalance and the long-run admitted ratio would stick at
// floor+1 : floor instead of the configured weights.
func claimLess(a, b aggregate, fa, fb float64) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	ua, ub := normUsage(a), normUsage(b)
	if ua != ub {
		return ua < ub
	}
	if fa != fb {
		return fa > fb
	}
	return a.n.path < b.n.path
}

func normUsage(a aggregate) float64 {
	w := a.weight
	if w <= 0 {
		w = 1
	}
	return a.usage / w
}

// apportion converts fractional targets into integers summing to exactly
// total: floor each target, then hand the remaining slots out in claim
// order — less is a strict weak order over target indices, given each
// side's fractional part so the caller can rank it among its criteria.
// Deterministic by construction.
func apportion(targets []float64, total int, less func(a, b int, fa, fb float64) bool) []int {
	ints := make([]int, len(targets))
	sum := 0
	type frac struct {
		idx int
		f   float64
	}
	fracs := make([]frac, len(targets))
	for i, v := range targets {
		if v < 0 {
			v = 0
		}
		ints[i] = int(v)
		sum += ints[i]
		fracs[i] = frac{i, v - float64(ints[i])}
	}
	sort.SliceStable(fracs, func(a, b int) bool {
		return less(fracs[a].idx, fracs[b].idx, fracs[a].f, fracs[b].f)
	})
	for k := 0; sum < total && len(fracs) > 0; k = (k + 1) % len(fracs) {
		ints[fracs[k].idx]++
		sum++
	}
	return ints
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
