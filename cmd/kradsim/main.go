// Command kradsim runs one K-resource scheduling simulation and reports
// the paper's metrics: makespan, mean response time, the Section 4/6 lower
// bounds, and the resulting competitive ratios.
//
// The workload is either generated (-jobs/-shapes/-arrive) or loaded from a
// JSON file (-load) holding [{"release": R, "graph": {...}}, ...] with
// graphs in the internal/dag encoding.
//
// Usage:
//
//	kradsim -k 3 -caps 4,4,4 -sched k-rad -jobs 50 -arrive poisson:3 \
//	        [-pick fifo] [-seed 1] [-gantt] [-csv trace.csv]
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"krad/internal/analysis"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/moldable"
	"krad/internal/profile"
	"krad/internal/sched"
	"krad/internal/sim"
	"krad/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kradsim: ")
	var (
		kFlag      = flag.Int("k", 3, "number of resource categories")
		capsFlag   = flag.String("caps", "4,4,4", "per-category processor counts, comma-separated")
		schedFlag  = flag.String("sched", "k-rad", fmt.Sprintf("scheduler: one of %v", analysis.SchedulerNames()))
		jobsFlag   = flag.Int("jobs", 20, "number of generated jobs (ignored with -load)")
		familyFlag = flag.String("family", "dag", "generated runtime family: dag, profile, moldable, mixed (ignored with -load/-swf/-preset)")
		shapeFlag  = flag.String("shapes", "", "restrict job shapes (comma-separated: chain,forkjoin,layered,mapreduce,pipeline,random,reduction,butterfly,stencil,dnc)")
		arrive     = flag.String("arrive", "batched", `arrival process: "batched", "poisson:<mean>", "uniform:<lo>,<hi>", or "bursty:<size>,<gap>"`)
		pickFlag   = flag.String("pick", "fifo", "task pick policy: fifo, lifo, random, cp-first, cp-last")
		seedFlag   = flag.Int64("seed", 1, "workload seed")
		minSize    = flag.Int("min-size", 4, "minimum job size (tasks)")
		maxSize    = flag.Int("max-size", 60, "maximum job size (tasks)")
		loadFlag   = flag.String("load", "", "load the job set from a JSON file instead of generating")
		swfFlag    = flag.String("swf", "", "load the job set from a Standard Workload Format log")
		swfScale   = flag.Int64("swf-scale", 60, "seconds per simulation step when reading SWF")
		swfMax     = flag.Int("swf-maxjobs", 500, "cap on SWF jobs read (0 = all)")
		presetFlag = flag.String("preset", "", fmt.Sprintf("use a named workload preset (overrides -k/-caps/-jobs): %v", workload.PresetNames()))
		saveFlag   = flag.String("save", "", "write the job set to a JSON file (usable later with -load)")
		ganttFlag  = flag.Bool("gantt", false, "print an ASCII Gantt chart (small runs only)")
		csvFlag    = flag.String("csv", "", "write the per-step trace as CSV to this file")
		jsonFlag   = flag.String("json", "", `write the run result + competitive ratios as JSON to this file ("-" = stdout, suppressing the report)`)
		parFlag    = flag.Bool("parallel", false, "parallelize the execution phase")
	)
	flag.Parse()

	k := *kFlag
	var caps []int
	var specs []sim.JobSpec
	var err error
	switch {
	case *presetFlag != "":
		p, perr := workload.FindPreset(*presetFlag)
		if perr != nil {
			log.Fatal(perr)
		}
		k = p.K
		caps = append([]int(nil), p.Caps...)
		specs, err = p.Build(*seedFlag)
		if err == nil {
			fmt.Printf("preset %q: %s\n", p.Name, p.Description)
		}
	case *swfFlag != "":
		caps, err = parseInts(*capsFlag)
		if err != nil || len(caps) != k {
			log.Fatalf("-caps must list exactly K=%d integers: %v", k, err)
		}
		var f *os.File
		f, err = os.Open(*swfFlag)
		if err != nil {
			log.Fatal(err)
		}
		var recs []workload.SWFRecord
		specs, recs, err = workload.ParseSWF(f, workload.SWFOptions{
			K: k, TimeScale: *swfScale, MaxJobs: *swfMax,
		})
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err == nil {
			fmt.Printf("SWF log %s: %d usable jobs loaded (scale %ds/step)\n", *swfFlag, len(recs), *swfScale)
		}
	case *loadFlag != "":
		caps, err = parseInts(*capsFlag)
		if err != nil || len(caps) != k {
			log.Fatalf("-caps must list exactly K=%d integers: %v", k, err)
		}
		specs, err = loadSpecs(*loadFlag)
	default:
		caps, err = parseInts(*capsFlag)
		if err != nil || len(caps) != k {
			log.Fatalf("-caps must list exactly K=%d integers: %v", k, err)
		}
		specs, err = generateFamily(*familyFlag, k, *jobsFlag, *shapeFlag, *arrive, *minSize, *maxSize, *seedFlag)
	}
	if err != nil {
		log.Fatal(err)
	}
	scheduler, err := analysis.NewScheduler(*schedFlag, k)
	if err != nil {
		log.Fatal(err)
	}
	// Moldable jobs pin processors non-preemptively; any job set containing
	// them needs a floor-respecting scheduler.
	for _, s := range specs {
		if s.Source != nil && sim.FamilyOf(s.Source) == sim.FamilyMoldable {
			scheduler = sched.WithFloors(scheduler)
			break
		}
	}
	pick, err := parsePick(*pickFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *saveFlag != "" {
		if err := saveSpecs(*saveFlag, specs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job set written to %s\n", *saveFlag)
	}

	level := sim.TraceNone
	if *csvFlag != "" {
		level = sim.TraceSteps
	}
	if *ganttFlag {
		level = sim.TraceTasks
	}
	res, err := sim.Run(sim.Config{
		K: k, Caps: caps, Scheduler: scheduler, Pick: pick, Seed: *seedFlag,
		Trace: level, ValidateAllotments: true, Parallel: *parFlag,
	}, specs)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonFlag != "-" {
		report(res)
	}
	if *jsonFlag != "" {
		if err := writeRunJSON(*jsonFlag, res); err != nil {
			log.Fatal(err)
		}
		if *jsonFlag != "-" {
			fmt.Printf("result written to %s\n", *jsonFlag)
		}
	}
	if *ganttFlag {
		fmt.Println()
		fmt.Print(res.Trace.Gantt(len(res.Jobs), 200))
	}
	if *csvFlag != "" {
		f, err := os.Create(*csvFlag)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Trace.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *csvFlag)
	}
}

// writeRunJSON emits one machine-readable JSON object holding the full
// run result (jobs, makespan, responses, utilization) plus the paper's
// lower bounds and competitive ratios. path "-" writes to stdout.
func writeRunJSON(path string, res *sim.Result) error {
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		return err
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		return err
	}
	r := metrics.ComputeRatios(res)
	obj["ratios"] = map[string]any{
		"makespan_lb":    r.MakespanLB,
		"makespan_ratio": r.MakespanRatio,
		"makespan_bound": r.MakespanBound,
		"response_lb":    r.ResponseLB,
		"response_ratio": r.ResponseRatio,
		"response_bound": r.ResponseBound,
		"light_load":     r.LightLoad,
	}
	data, err := json.MarshalIndent(obj, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func report(res *sim.Result) {
	r := metrics.ComputeRatios(res)
	fmt.Printf("scheduler      %s\n", res.Scheduler)
	fmt.Printf("jobs           %d\n", len(res.Jobs))
	fmt.Printf("K / caps       %d / %v\n", res.K, res.Caps)
	fmt.Printf("makespan       %d (lower bound %d, ratio %.3f, theorem bound %.3f)\n",
		r.Makespan, r.MakespanLB, r.MakespanRatio, r.MakespanBound)
	fmt.Printf("mean response  %.2f (total %d, lower bound %.1f, ratio %.3f, theorem bound %.3f)\n",
		res.MeanResponse(), r.TotalResponse, r.ResponseLB, r.ResponseRatio, r.ResponseBound)
	regime := "heavy (some category overloaded)"
	if r.LightLoad {
		regime = "light (|J(α,t)| ≤ Pα throughout)"
	}
	fmt.Printf("workload       %s\n", regime)
	fmt.Printf("utilization    ")
	for a, u := range res.Utilization() {
		if a > 0 {
			fmt.Print("  ")
		}
		fmt.Printf("cat%d=%.1f%%", a+1, 100*u)
	}
	fmt.Println()
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePick(s string) (dag.PickPolicy, error) {
	switch s {
	case "fifo":
		return dag.PickFIFO, nil
	case "lifo":
		return dag.PickLIFO, nil
	case "random":
		return dag.PickRandom, nil
	case "cp-first":
		return dag.PickCPFirst, nil
	case "cp-last":
		return dag.PickCPLast, nil
	}
	return 0, fmt.Errorf("unknown pick policy %q", s)
}

func parseShapes(s string) ([]workload.Shape, error) {
	if s == "" {
		return nil, nil
	}
	byName := map[string]workload.Shape{}
	for _, sh := range workload.AllShapes {
		byName[sh.String()] = sh
	}
	var out []workload.Shape
	for _, p := range strings.Split(s, ",") {
		sh, ok := byName[strings.TrimSpace(p)]
		if !ok {
			return nil, fmt.Errorf("unknown shape %q", p)
		}
		out = append(out, sh)
	}
	return out, nil
}

func generate(k, jobs int, shapes, arrive string, minSize, maxSize int, seed int64) ([]sim.JobSpec, error) {
	shapeList, err := parseShapes(shapes)
	if err != nil {
		return nil, err
	}
	mix := workload.Mix{
		K: k, Jobs: jobs, Shapes: shapeList,
		MinSize: minSize, MaxSize: maxSize, Seed: seed,
	}
	if arrive == "batched" {
		return mix.Generate()
	}
	name, arg, _ := strings.Cut(arrive, ":")
	switch name {
	case "poisson":
		mean, err := strconv.ParseFloat(arg, 64)
		if err != nil || mean <= 0 {
			return nil, fmt.Errorf("poisson needs a positive mean, got %q (%v)", arg, err)
		}
		return mix.GenerateOnline(workload.Poisson(mean))
	case "uniform":
		vals, err := parseInts(arg)
		if err != nil || len(vals) != 2 {
			return nil, fmt.Errorf("uniform needs lo,hi: %v", err)
		}
		if vals[0] < 0 || vals[1] < vals[0] {
			return nil, fmt.Errorf("uniform needs 0 ≤ lo ≤ hi, got %d,%d", vals[0], vals[1])
		}
		return mix.GenerateOnline(workload.Uniform(int64(vals[0]), int64(vals[1])))
	case "bursty":
		vals, err := parseInts(arg)
		if err != nil || len(vals) != 2 {
			return nil, fmt.Errorf("bursty needs size,gap: %v", err)
		}
		if vals[0] < 1 || vals[1] < 0 {
			return nil, fmt.Errorf("bursty needs size ≥ 1 and gap ≥ 0, got %d,%d", vals[0], vals[1])
		}
		return mix.GenerateOnline(workload.Bursty(vals[0], int64(vals[1])))
	}
	return nil, fmt.Errorf("unknown arrival process %q", arrive)
}

// generateFamily dispatches workload generation by runtime family. The
// dag family keeps the full shape/arrival machinery; profile and moldable
// sets are drawn by their packages' deterministic generators, with the
// size flags mapped onto the closest notion the family has (phases for
// profiles, tasks for moldable jobs). mixed splits the job count across
// the three families, interleaved so releases stay spread.
func generateFamily(family string, k, jobs int, shapes, arrive string, minSize, maxSize int, seed int64) ([]sim.JobSpec, error) {
	switch family {
	case "dag":
		return generate(k, jobs, shapes, arrive, minSize, maxSize, seed)
	case "profile":
		return profile.Generate(profile.GenOpts{
			K: k, Jobs: jobs,
			MinPhases: 2, MaxPhases: 8, MaxParallelism: maxSize, Seed: seed,
		})
	case "moldable":
		return moldable.Generate(moldable.GenOpts{
			K: k, Jobs: jobs,
			MinTasks: minSize, MaxTasks: maxSize, Seed: seed,
		}), nil
	case "mixed":
		third := jobs / 3
		if third < 1 {
			third = 1
		}
		dags, err := generate(k, third, shapes, arrive, minSize, maxSize, seed)
		if err != nil {
			return nil, err
		}
		profs, err := profile.Generate(profile.GenOpts{
			K: k, Jobs: third,
			MinPhases: 2, MaxPhases: 8, MaxParallelism: maxSize, Seed: seed + 1,
		})
		if err != nil {
			return nil, err
		}
		rest := jobs - 2*third
		if rest < 0 {
			rest = 0
		}
		molds := moldable.Generate(moldable.GenOpts{
			K: k, Jobs: rest,
			MinTasks: minSize, MaxTasks: maxSize, Seed: seed + 2,
		})
		specs := append(append(dags, profs...), molds...)
		return specs, nil
	}
	return nil, fmt.Errorf("unknown family %q (want dag, profile, moldable or mixed)", family)
}

// jobJSON is the -load file format.
type jobJSON struct {
	Release int64      `json:"release"`
	Graph   *dag.Graph `json:"graph"`
}

func saveSpecs(path string, specs []sim.JobSpec) error {
	jobs := make([]jobJSON, len(specs))
	for i, s := range specs {
		if s.Graph == nil {
			return fmt.Errorf("job %d has no graph; only DAG-backed job sets can be saved", i)
		}
		jobs[i] = jobJSON{Release: s.Release, Graph: s.Graph}
	}
	data, err := json.MarshalIndent(jobs, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func loadSpecs(path string) ([]sim.JobSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var jobs []jobJSON
	if err := json.Unmarshal(data, &jobs); err != nil {
		return nil, fmt.Errorf("parse %s: %s", path, describeJSONError(data, err))
	}
	specs := make([]sim.JobSpec, len(jobs))
	for i, j := range jobs {
		if j.Graph == nil {
			return nil, fmt.Errorf("%s: job %d has no graph", path, i)
		}
		specs[i] = sim.JobSpec{Graph: j.Graph, Release: j.Release}
	}
	return specs, nil
}

// describeJSONError turns encoding/json's byte-offset errors into a
// line:column position and reminds the user of the expected file format.
func describeJSONError(data []byte, err error) string {
	const hint = `expected [{"release": R, "graph": {"k": K, "categories": [...], "edges": [[u,v], ...]}}, ...]`
	var offset int64 = -1
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn):
		offset = syn.Offset
	case errors.As(err, &typ):
		offset = typ.Offset
	}
	if offset < 0 || offset > int64(len(data)) {
		return fmt.Sprintf("%v (%s)", err, hint)
	}
	line, col := 1, 1
	for _, b := range data[:offset] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("line %d, column %d: %v (%s)", line, col, err, hint)
}
