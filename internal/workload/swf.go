package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"krad/internal/dag"
	"krad/internal/profile"
	"krad/internal/sim"
)

// SWF support: the Standard Workload Format of the Parallel Workloads
// Archive (Feitelson et al.) is the de-facto interchange format for real
// supercomputer logs. An SWF line has 18 whitespace-separated integer
// fields; ';' starts a comment. This reader maps each record onto the
// K-resource model as a *rigid* job — p processors for t time steps —
// realized as a profile job of t phases × p tasks, so its work is p·t and
// its span t, exactly the rigid-job semantics. Categories do not exist in
// SWF; the Category callback assigns them (by partition, by executable,
// round-robin, ...).

// SWFRecord is one parsed job record (the fields this library uses; the
// full 18 are preserved in Raw).
type SWFRecord struct {
	// JobID is field 1.
	JobID int
	// Submit is field 2 (seconds since log start).
	Submit int64
	// RunTime is field 4 (seconds; −1 = unknown).
	RunTime int64
	// Procs is field 5 (allocated processors; falls back to field 8,
	// requested, when −1).
	Procs int
	// Partition is field 16 (−1 = unknown) — a common category proxy.
	Partition int
	// Raw holds all 18 fields as parsed.
	Raw [18]int64
}

// Usable reports whether the record describes a runnable job: a positive
// run time and processor count and a non-negative submit time. Real logs
// carry cancelled and malformed entries that fail this; readers decide
// whether to skip or count them.
func (rec SWFRecord) Usable() bool {
	return rec.RunTime > 0 && rec.Procs > 0 && rec.Submit >= 0
}

// RigidSpec maps the record onto the wire form of a rigid profile job for
// a K-category machine: Procs processors in category cat for the record's
// runtime ceiled to steps of timeScale seconds. This is what a load
// generator posts as {"rigid": ...}; the release companion is
// rec.Submit / timeScale.
func (rec SWFRecord) RigidSpec(k int, cat dag.Category, timeScale int64) (profile.RigidSpec, error) {
	if !rec.Usable() {
		return profile.RigidSpec{}, fmt.Errorf("workload: SWF job %d is not usable (runtime %d, procs %d, submit %d)",
			rec.JobID, rec.RunTime, rec.Procs, rec.Submit)
	}
	if timeScale < 1 {
		return profile.RigidSpec{}, fmt.Errorf("workload: RigidSpec needs timeScale ≥ 1")
	}
	// Ceil without the (runtime + scale − 1) overflow a hostile log's
	// MaxInt64 runtime would trigger; RunTime ≥ 1 here per Usable.
	steps := (rec.RunTime-1)/timeScale + 1
	if steps > math.MaxInt32 {
		return profile.RigidSpec{}, fmt.Errorf("workload: SWF job %d runtime %d at scale %d yields %d steps; implausible for a real log",
			rec.JobID, rec.RunTime, timeScale, steps)
	}
	return profile.RigidSpec{
		K:     k,
		Name:  fmt.Sprintf("swf-%d", rec.JobID),
		Cat:   int(cat),
		Procs: rec.Procs,
		Steps: int(steps),
	}, nil
}

// SWFReader streams records out of an SWF log one at a time, without
// materializing the whole job set — the record-level access a closed-loop
// load generator needs to pace a million-job archive log through a live
// daemon at bounded memory.
type SWFReader struct {
	sc     *bufio.Scanner
	lineNo int
}

// NewSWFReader wraps r; lines longer than 1 MiB fail rather than split.
func NewSWFReader(r io.Reader) *SWFReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &SWFReader{sc: sc}
}

// Next returns the next record in the log, skipping comments and blank
// lines but NOT unusable records — callers filter with Usable so they can
// count what they skipped. Returns io.EOF at a clean end of log; any
// other error names the offending line.
func (r *SWFReader) Next() (SWFRecord, error) {
	for r.sc.Scan() {
		r.lineNo++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		return parseSWFLine(r.lineNo, line)
	}
	if err := r.sc.Err(); err != nil {
		return SWFRecord{}, fmt.Errorf("workload: SWF read: %w", err)
	}
	return SWFRecord{}, io.EOF
}

// Line reports the line number of the record Next returned last.
func (r *SWFReader) Line() int { return r.lineNo }

func parseSWFLine(lineNo int, line string) (SWFRecord, error) {
	fields := strings.Fields(line)
	if len(fields) < 18 {
		return SWFRecord{}, fmt.Errorf("workload: SWF line %d has %d fields, want 18", lineNo, len(fields))
	}
	var rec SWFRecord
	for i := 0; i < 18; i++ {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			return SWFRecord{}, fmt.Errorf("workload: SWF line %d field %d: %w", lineNo, i+1, err)
		}
		rec.Raw[i] = v
	}
	rec.JobID = int(rec.Raw[0])
	rec.Submit = rec.Raw[1]
	rec.RunTime = rec.Raw[3]
	rec.Procs = int(rec.Raw[4])
	if rec.Procs <= 0 {
		rec.Procs = int(rec.Raw[7]) // requested
	}
	rec.Partition = int(rec.Raw[15])
	return rec, nil
}

// SWFOptions controls the mapping onto the K-resource model.
type SWFOptions struct {
	// K is the number of resource categories of the target machine.
	K int
	// TimeScale converts log seconds to simulation steps: one step per
	// TimeScale seconds (≥ 1; e.g. 60 for minute-granularity steps).
	// Runtimes round up so no job becomes empty.
	TimeScale int64
	// MaxJobs truncates the log after this many accepted records
	// (0 = no limit).
	MaxJobs int
	// MaxProcs caps a record's processor count (0 = no cap) — logs from
	// machines much larger than the simulated one would otherwise swamp a
	// single category.
	MaxProcs int
	// Category assigns a resource category to a record; nil means
	// round-robin over [1, K] by acceptance order.
	Category func(rec SWFRecord, index int) dag.Category
	// Rigid emits each job as a *profile.Rigid (the O(1)-memory rigid
	// form) instead of an explicit phase-profile job. Work vectors, spans
	// and schedules are identical either way; rigid jobs just skip
	// materializing steps × K phase slices, which matters at archive
	// scale (a million 10-hour jobs is ~10⁹ phase entries).
	Rigid bool
}

// ParseSWF reads an SWF log and returns engine-ready job specs (releases
// in simulation steps, shapes as rigid profile jobs) plus the parsed
// records. Records with unusable run times or processor counts are
// skipped, not fatal: real logs contain cancelled and malformed entries.
func ParseSWF(r io.Reader, opts SWFOptions) ([]sim.JobSpec, []SWFRecord, error) {
	if opts.K < 1 {
		return nil, nil, fmt.Errorf("workload: SWF options need K ≥ 1")
	}
	if opts.TimeScale < 1 {
		return nil, nil, fmt.Errorf("workload: SWF options need TimeScale ≥ 1")
	}
	assign := opts.Category
	if assign == nil {
		assign = func(_ SWFRecord, i int) dag.Category { return dag.Category(i%opts.K + 1) }
	}

	var specs []sim.JobSpec
	var records []SWFRecord
	rd := NewSWFReader(r)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		// Skip unusable records (cancelled jobs, unknown durations).
		if !rec.Usable() {
			continue
		}
		if opts.MaxProcs > 0 && rec.Procs > opts.MaxProcs {
			rec.Procs = opts.MaxProcs
		}

		cat := assign(rec, len(records))
		if cat < 1 || int(cat) > opts.K {
			return nil, nil, fmt.Errorf("workload: SWF line %d: category %d out of [1,%d]", rd.Line(), cat, opts.K)
		}
		sp, err := rec.RigidSpec(opts.K, cat, opts.TimeScale)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: SWF line %d: %w", rd.Line(), err)
		}
		var job sim.JobSource
		if opts.Rigid {
			job, err = profile.FromRigidSpec(sp)
		} else {
			// Phase materialization is O(steps × K) memory; beyond this
			// bound only the O(1) rigid form is sane (≈ 48 days of
			// 1-second steps — no archive job is longer).
			const maxPhaseSteps = 1 << 22
			if sp.Steps > maxPhaseSteps {
				return nil, nil, fmt.Errorf("workload: SWF line %d: %d steps exceeds the %d-step phase-profile bound; set SWFOptions.Rigid",
					rd.Line(), sp.Steps, maxPhaseSteps)
			}
			phases := make([]profile.Phase, sp.Steps)
			for p := range phases {
				tasks := make([]int, opts.K)
				tasks[cat-1] = rec.Procs
				phases[p] = profile.Phase{Tasks: tasks}
			}
			job, err = profile.New(opts.K, sp.Name, phases)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("workload: SWF line %d: %w", rd.Line(), err)
		}
		specs = append(specs, sim.JobSpec{
			Source:  job,
			Release: rec.Submit / opts.TimeScale,
		})
		records = append(records, rec)
		if opts.MaxJobs > 0 && len(records) >= opts.MaxJobs {
			break
		}
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("workload: SWF log contained no usable jobs")
	}
	return specs, records, nil
}

// WriteSyntheticSWF emits a small synthetic-but-plausible SWF log (n jobs,
// Poisson-ish arrivals, power-of-two processor requests) — handy for demos
// and tests when no archive log is at hand.
func WriteSyntheticSWF(w io.Writer, n int, seed int64) error {
	if n < 1 {
		return fmt.Errorf("workload: synthetic SWF needs n ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	if _, err := fmt.Fprintln(w, "; synthetic SWF log generated by krad (18 fields per record)"); err != nil {
		return err
	}
	submit := int64(0)
	for i := 1; i <= n; i++ {
		submit += int64(rng.Intn(600))
		run := int64(60 + rng.Intn(7200))
		procs := 1 << rng.Intn(6)
		partition := 1 + rng.Intn(3)
		// 18 fields: id submit wait run procs avgcpu mem reqprocs reqtime
		// reqmem status uid gid exe queue partition prev think
		if _, err := fmt.Fprintf(w, "%d %d 0 %d %d -1 -1 %d %d -1 1 1 1 %d 1 %d -1 -1\n",
			i, submit, run, procs, procs, run, 1+rng.Intn(9), partition); err != nil {
			return err
		}
	}
	return nil
}
