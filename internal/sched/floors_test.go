package sched

import (
	"testing"
)

func TestWithFloorsIdentityWithoutFloors(t *testing.T) {
	inner := &countingSched{}
	f := WithFloors(inner)
	jobs := []JobView{{ID: 0, Desire: []int{3}}, {ID: 1, Desire: []int{3}}}
	allot := f.Allot(1, jobs, []int{2})
	if allot[0][0] != 1 || allot[1][0] != 1 {
		t.Errorf("identity path wrong: %v", allot)
	}
	if f.Name() != "counting+floors" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestWithFloorsGrantsFloorsFirst(t *testing.T) {
	inner := &countingSched{}
	f := WithFloors(inner)
	jobs := []JobView{
		{ID: 0, Desire: []int{4}, Floor: []int{3}},
		{ID: 1, Desire: []int{4}},
	}
	caps := []int{4}
	allot := f.Allot(1, jobs, caps)
	if err := ValidateAllotments(jobs, caps, allot); err != nil {
		t.Fatal(err)
	}
	if allot[0][0] < 3 {
		t.Errorf("floor not granted: %v", allot)
	}
	// Residual capacity 1 went through the inner scheduler (one each in
	// ID order; inner gives 1 per job until out).
	total := allot[0][0] + allot[1][0]
	if total > 4 {
		t.Errorf("capacity exceeded: %v", allot)
	}
}

func TestWithFloorsPanicsWhenFloorsExceedCapacity(t *testing.T) {
	f := WithFloors(&countingSched{})
	jobs := []JobView{{ID: 0, Desire: []int{5}, Floor: []int{5}}}
	defer func() {
		if recover() == nil {
			t.Error("impossible floors accepted")
		}
	}()
	f.Allot(1, jobs, []int{3})
}

func TestWithFloorsForwardsCompletions(t *testing.T) {
	inner := &countingSched{}
	f := WithFloors(inner)
	f.(Completer).JobsDone([]int{7})
	if len(inner.done) != 1 {
		t.Error("completions not forwarded")
	}
}

func TestValidateAllotmentsChecksFloors(t *testing.T) {
	jobs := []JobView{{ID: 0, Desire: []int{4}, Floor: []int{2}}}
	caps := []int{4}
	if err := ValidateAllotments(jobs, caps, [][]int{{1}}); err == nil {
		t.Error("allotment below floor accepted")
	}
	if err := ValidateAllotments(jobs, caps, [][]int{{2}}); err != nil {
		t.Errorf("floor-meeting allotment rejected: %v", err)
	}
}
