package sim

import (
	"encoding/json"
	"io"
)

// resultJSON is the stable on-disk schema for run results — consumed by
// plotting scripts and downstream tooling. It mirrors Result but keeps
// only serializable, schema-stable fields.
type resultJSON struct {
	Scheduler  string          `json:"scheduler"`
	K          int             `json:"k"`
	Caps       []int           `json:"caps"`
	Makespan   int64           `json:"makespan"`
	TotalResp  int64           `json:"total_response"`
	MeanResp   float64         `json:"mean_response"`
	Overloaded []bool          `json:"overloaded"`
	Util       []float64       `json:"utilization"`
	Jobs       []jobResultJSON `json:"jobs"`
}

type jobResultJSON struct {
	ID         int   `json:"id"`
	Release    int64 `json:"release"`
	Completion int64 `json:"completion"`
	Response   int64 `json:"response"`
	Work       []int `json:"work"`
	Span       int   `json:"span"`
}

// WriteJSON serializes the result (without traces) for downstream
// analysis. The schema is stable: scheduler, machine shape, makespan,
// response aggregates, per-job outcomes.
func (r *Result) WriteJSON(w io.Writer) error {
	out := resultJSON{
		Scheduler:  r.Scheduler,
		K:          r.K,
		Caps:       r.Caps,
		Makespan:   r.Makespan,
		TotalResp:  r.TotalResponse(),
		MeanResp:   r.MeanResponse(),
		Overloaded: r.Overloaded,
		Util:       r.Utilization(),
	}
	for _, j := range r.Jobs {
		out.Jobs = append(out.Jobs, jobResultJSON{
			ID:         j.ID,
			Release:    j.Release,
			Completion: j.Completion,
			Response:   j.Response(),
			Work:       j.Work,
			Span:       j.Span,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadResultJSON parses a result written by WriteJSON back into a Result
// (Trace is nil; derived fields recompute from the job table).
func ReadResultJSON(r io.Reader) (*Result, error) {
	var in resultJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	res := &Result{
		Scheduler:  in.Scheduler,
		K:          in.K,
		Caps:       in.Caps,
		Makespan:   in.Makespan,
		Overloaded: in.Overloaded,
	}
	for _, j := range in.Jobs {
		res.Jobs = append(res.Jobs, JobResult{
			ID:         j.ID,
			Release:    j.Release,
			Completion: j.Completion,
			Work:       j.Work,
			Span:       j.Span,
		})
	}
	return res, nil
}
