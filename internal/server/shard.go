package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"krad/internal/fairshare"
	"krad/internal/journal"
	"krad/internal/metrics"
	"krad/internal/sched"
	"krad/internal/sim"
)

// shard is one independent scheduling engine and the goroutine that steps
// it: the pre-sharding Service extracted whole. Each shard owns its own
// sim.Engine, admission bound, lifecycle counters and response histogram;
// the Service front-end routes submissions across shards and aggregates
// their state. K-RAD's per-category analysis holds per machine, so every
// shard preserves the paper's bounds independently.
type shard struct {
	idx         int
	maxInFlight int
	stepEvery   time.Duration
	stepBatch   int64 // max virtual steps per loop iteration (Config.StepBatch)
	fan         *fanout

	// tab is the shard's lock-striped job-status index (idtable.go):
	// status reads go through it without touching mu, so GET/DELETE
	// lookups never contend with the step loop. Written under mu at every
	// committed mutation; reads are guarded by the stripe locks alone.
	tab *idTable
	// retireDone, when set, retires each job from the engine once its
	// terminal state is recorded in tab, bounding engine memory under
	// sustained arrival streams (Config.RetireDone).
	retireDone bool

	mu        sync.Mutex // guards eng and the counters below
	eng       *sim.Engine
	started   bool
	closed    bool
	stepErr   error
	steps     int64
	submitted int64 // external admissions only; stolen-in jobs count in stolenIn
	completed int64
	cancelled int64
	rejected  int64
	// resp accumulates one response time per completed job in fixed space:
	// exact N/Min/Max/Mean, bucketed quantiles (metrics.SampleHist). It
	// replaces an unbounded []float64 that grew for the life of the
	// process. respHist is the separate power-of-two histogram /metrics
	// exposes.
	resp     metrics.SampleHist
	respHist *histogram

	// Work stealing (see steal.go). steal marks the shard part of a
	// steal-enabled fleet: its journal may carry steal records and its
	// idle loop probes for victims. stealFn, set by the service, attempts
	// one steal on behalf of this shard and reports whether it moved work.
	// stealIdle, when > 0, also triggers a probe after a step round that
	// left estimated work below the threshold (near-idle top-up). stolenIn
	// counts jobs this shard re-admitted from victims — kept out of
	// submitted so external admission counters survive replay rebuilds
	// (submitted = engine admitted − stolenIn). The scratch slices are
	// stealFor's reusable buffers.
	steal      bool
	stealIdle  int64
	stealFn    func() bool
	stolenIn   int64
	stealIDs   []int
	stealSpecs []sim.JobSpec
	stealFrom  []int
	// ledger is the service-wide steal reconciliation ledger (steal.go),
	// shared by every shard; nil when stealing is off.
	ledger *stealLedger

	// Lock-free load gauges, refreshed under mu at every engine mutation
	// (syncGaugesLocked) and read without it by placement and victim
	// selection: loadRemaining mirrors eng.Remaining(), loadEstWork
	// eng.EstWork() (estimated remaining task-steps), loadPendWork
	// eng.PendingWork() (the stealable portion).
	loadRemaining atomic.Int64
	loadEstWork   atomic.Int64
	loadPendWork  atomic.Int64

	// fair, when set, enables the shard's slice of fair-share accounting
	// (see fairness.go): per-leaf decayed usage on this shard's virtual
	// clock, per-leaf in-flight counts and a job→leaf map, all mutated
	// under mu at the same points the journal records. Nil when fairness
	// is off, so the fairness-free hot path allocates nothing.
	fair         *shardFair
	fairUsage    map[string]*fairshare.Usage
	fairInFlight map[string]int
	fairJobs     map[int]string

	// jn, when set, is the shard's write-ahead journal (see journal.go):
	// every committed mutation is appended under the same lock acquisition
	// that committed it, so the journal's record order IS the engine's
	// mutation order. compactEvery and compactOff govern idle-point
	// snapshot compaction.
	jn           *journal.Journal
	compactEvery int64
	compactOff   bool
	// admitRec is the scratch admission record journalAdmitLocked refills
	// in place (journal.AdmitRecordInto) when no replication sender could
	// retain it — the allocation-free leg of the journaled submit path.
	admitRec journal.Record

	// Replication state (see replicate.go). repSeq is the sequence number
	// of the shard's last committed mutation record (1-based since engine
	// birth; snapshot records carry the cursor but take no number of their
	// own). applied counts records in the logical journal sequence — the
	// pos argument incremental replay needs, reset to 1 by a snapshot.
	// rep, when set, receives every committed record (primary mode) and
	// gates admissions behind fencing/lease checks. standby marks a
	// follower shard at journal-attach time; repErr latches a follower
	// that diverged from its primary's stream. newEngine rebuilds a fresh
	// engine (fresh scheduler instance included) for snapshot restores.
	rep       Replicator
	repSeq    int64
	applied   int64
	repErr    error
	standby   bool
	newEngine func() (*sim.Engine, error)

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// shardView is a locked snapshot of one shard's counters, taken for
// Stats and /metrics aggregation.
type shardView struct {
	idx       int
	snap      sim.EngineSnapshot
	steps     int64
	submitted int64
	completed int64
	cancelled int64
	rejected  int64
	stolenIn  int64
	estWork   int64
	stepErr   error
	resp      *metrics.SampleHist
	hist      histogram // counts copied; safe to merge
}

func newShard(idx int, simCfg sim.Config, mkSched func() sched.Scheduler, maxInFlight int, stepEvery time.Duration, stepBatch int64, fan *fanout) (*shard, error) {
	// newEngine must yield an engine Restore accepts (fresh, with its own
	// scheduler instance when a factory exists) — snapshot application on a
	// replication follower rebuilds the engine wholesale.
	newEngine := func() (*sim.Engine, error) {
		c := simCfg
		if mkSched != nil {
			c.Scheduler = mkSched()
		}
		return sim.NewEngine(c)
	}
	eng, err := newEngine()
	if err != nil {
		return nil, err
	}
	if stepBatch < 1 {
		stepBatch = 1
	}
	return &shard{
		idx:         idx,
		maxInFlight: maxInFlight,
		stepEvery:   stepEvery,
		stepBatch:   stepBatch,
		fan:         fan,
		tab:         newIDTable(simCfg.K),
		eng:         eng,
		newEngine:   newEngine,
		respHist:    newHistogram(responseBuckets()),
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}, nil
}

// start launches the step loop. Extra calls are no-ops, as is starting a
// closed shard. A shard that is never started still serves submissions,
// queries and cancellations — the clock just never moves (useful in
// tests).
func (sh *shard) start() {
	sh.mu.Lock()
	if sh.started || sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.started = true
	sh.mu.Unlock()
	go sh.loop()
}

// submit admits one job and returns its engine-local ID. tenant is the
// resolved fair-share leaf path ("" outside the fair admission gate).
func (sh *shard) submit(tenant string, spec sim.JobSpec) (int, error) {
	ids, err := sh.submitBatch(tenant, []sim.JobSpec{spec})
	if err != nil {
		return -1, err
	}
	return ids[0], nil
}

// submitBatch admits every spec — or none — under one lock acquisition,
// returning engine-local IDs. The whole batch is rejected with
// ErrQueueFull when it does not fit the shard's admission bound, and each
// member counts as a rejection. tenant, when non-empty, is the fair-share
// leaf path the admission is journaled under and charged to.
func (sh *shard) submitBatch(tenant string, specs []sim.JobSpec) ([]int, error) {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return nil, ErrClosed
	}
	if sh.rep != nil {
		if err := sh.rep.WriteAllowed(); err != nil {
			// Fenced or lease-expired primary: acknowledging this write
			// could diverge from a promoted follower. Refuse with the
			// replication error located to this shard.
			sh.rejected += int64(len(specs))
			sh.mu.Unlock()
			return nil, fmt.Errorf("shard %d: %w", sh.idx, err)
		}
	}
	if !sh.journalHealthyLocked() {
		// Degraded disk: nothing new can be made durable. Shed the
		// submission; in-flight jobs keep scheduling from memory.
		sh.rejected += int64(len(specs))
		sh.mu.Unlock()
		return nil, ErrDegraded
	}
	if sh.eng.Remaining()+len(specs) > sh.maxInFlight {
		sh.rejected += int64(len(specs))
		sh.mu.Unlock()
		return nil, ErrQueueFull
	}
	for i := range specs {
		if specs[i].Release == 0 {
			specs[i].Release = sh.eng.Now()
		}
	}
	ids, err := sh.eng.AdmitBatch(specs)
	if err == nil && sh.jn != nil {
		// Journal after commit, under the same lock acquisition: success
		// means the IDs are durable and may be acknowledged; failure rolls
		// the admission back before anyone saw the IDs.
		err = sh.journalAdmitLocked(ids, specs, tenant)
	}
	if err == nil {
		sh.submitted += int64(len(ids))
		// Index before the IDs are acknowledged: a status query racing the
		// submit response must find the job. JobRef's Work aliases engine
		// memory; put copies it into the stripe arena.
		for _, id := range ids {
			st, _ := sh.eng.JobRef(id)
			sh.tab.put(id, st)
		}
		// Ledger accrual strictly after the admission is durable, so the
		// journal's record sequence replays to the identical ledger.
		sh.fairAccrueLocked(tenant, ids, specsCost(specs))
	}
	sh.syncGaugesLocked()
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	sh.kick()
	return ids, nil
}

// cancel withdraws a pending or active job (engine-local ID); its
// processors are free from the next step.
func (sh *shard) cancel(id int) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.rep != nil {
		if err := sh.rep.WriteAllowed(); err != nil {
			return fmt.Errorf("shard %d: %w", sh.idx, err)
		}
	}
	// Precheck against the status index, which — unlike the engine under
	// RetireDone — still remembers retired jobs. The error texts mirror
	// sim.Engine.Cancel exactly, so callers see the engine's canonical
	// wording whether or not the job's state has been recycled. The
	// journal path additionally relies on the precheck: once a cancel
	// record is appended, Cancel below must not fail.
	switch ph, done, ok := sh.tab.phaseOf(id); {
	case !ok:
		return fmt.Errorf("sim: no job %d", id)
	case ph == sim.JobDone:
		return fmt.Errorf("sim: job %d already completed at step %d", id, done)
	case ph == sim.JobCancelled:
		return fmt.Errorf("sim: job %d already cancelled", id)
	}
	journaled := false
	rec := journal.CancelRecord(id)
	if sh.jn != nil {
		if !sh.journalHealthyLocked() {
			return ErrDegraded
		}
		if err := sh.jn.Append(rec); err != nil {
			return fmt.Errorf("%w: %v", ErrDegraded, err)
		}
		journaled = true
	}
	err := sh.eng.Cancel(id)
	if err == nil {
		sh.cancelled++
		sh.fairForgetLocked(id)
		sh.tab.setCancelled(id, sh.eng.Now())
		if sh.retireDone {
			_ = sh.eng.Retire(id)
		}
		if journaled {
			sh.commitLocked(rec)
		}
		sh.syncGaugesLocked()
	}
	return err
}

// syncGaugesLocked refreshes the shard's lock-free load gauges from the
// engine. Called with mu held after every mutation that changes the
// engine's remaining/work totals; readers (placement, victim selection)
// load the atomics without touching mu. Allocation-free — the steady-state
// step path pins this with AllocsPerRun.
func (sh *shard) syncGaugesLocked() {
	sh.loadRemaining.Store(int64(sh.eng.Remaining()))
	sh.loadEstWork.Store(sh.eng.EstWork())
	sh.loadPendWork.Store(sh.eng.PendingWork())
}

// job returns a job's lifecycle status by engine-local ID. It reads the
// lock-striped index, never the shard lock: status queries stay fast
// while the step loop holds mu through a long scheduling round.
func (sh *shard) job(id int) (sim.JobStatus, bool) {
	return sh.tab.get(id)
}

// err returns the step loop's fatal error, if one occurred.
func (sh *shard) err() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.stepErr
}

// inFlight returns the shard's pending + active job count (the placement
// load signal).
func (sh *shard) inFlight() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.Remaining()
}

// view snapshots the shard's counters for aggregation.
func (sh *shard) view() shardView {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v := shardView{
		idx:       sh.idx,
		snap:      sh.eng.Snapshot(),
		steps:     sh.steps,
		submitted: sh.submitted,
		completed: sh.completed,
		cancelled: sh.cancelled,
		rejected:  sh.rejected,
		stolenIn:  sh.stolenIn,
		estWork:   sh.eng.EstWork(),
		stepErr:   sh.stepErr,
		resp:      sh.resp.Clone(),
		hist:      *sh.respHist,
	}
	v.hist.counts = append([]uint64(nil), sh.respHist.counts...)
	return v
}

// commitLocked advances the shard's replication cursor past a mutation
// record that just landed in the journal and hands it to the replication
// hook, if one is attached. Called with the shard lock held, immediately
// after the successful append, so the hook observes records in exactly
// the journal's order.
func (sh *shard) commitLocked(rec journal.Record) {
	sh.repSeq++
	sh.applied++
	if sh.rep != nil {
		sh.rep.Committed(sh.idx, sh.repSeq, rec)
	}
}

// close stops admission and drains in-flight jobs (the loop keeps
// stepping until the engine is idle). If ctx expires first, the loop is
// stopped immediately, abandoning unfinished jobs. The journal-close
// error (a failed final flush means acknowledged tail records may not be
// durable) is propagated either way.
func (sh *shard) close(ctx context.Context) error {
	sh.mu.Lock()
	already := sh.closed
	sh.closed = true
	started := sh.started
	sh.mu.Unlock()
	if !started {
		if !already {
			close(sh.done)
			return sh.closeJournal()
		}
		return nil
	}
	sh.kick()
	select {
	case <-sh.done:
		return sh.closeJournal()
	case <-ctx.Done():
		close(sh.stop)
		<-sh.done
		return errors.Join(ctx.Err(), sh.closeJournal())
	}
}

// closeJournal syncs and closes the shard's journal once the step loop
// has exited (no appender can race it), reporting a failed final flush —
// silently swallowing it would let a dirty interval-fsync tail vanish
// with a clean exit status.
func (sh *shard) closeJournal() error {
	sh.mu.Lock()
	jn := sh.jn
	sh.mu.Unlock()
	if jn == nil {
		return nil
	}
	if err := jn.Close(); err != nil {
		return fmt.Errorf("shard %d: close journal: %w", sh.idx, err)
	}
	return nil
}

// kick wakes the loop if it is parked.
func (sh *shard) kick() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// stepOnce executes exactly one engine step if work is queued. The loop
// drives stepN; tests that need a hand-driven clock call stepOnce
// directly instead of start.
func (sh *shard) stepOnce() (bool, error) {
	n, err := sh.stepN(1)
	return n > 0, err
}

// stepN executes up to max engine steps under ONE lock acquisition and
// ONE journal append: the clock advances (leaping where the engine proves
// it safe), counters update, and a single aggregated event fans out with
// namespaced job IDs. It reports 0 without stepping when the engine is
// idle or a previous step failed fatally.
func (sh *shard) stepN(max int64) (int64, error) {
	sh.mu.Lock()
	if sh.stepErr != nil {
		err := sh.stepErr
		sh.mu.Unlock()
		return 0, err
	}
	if sh.eng.Idle() {
		sh.mu.Unlock()
		return 0, nil
	}
	info, err := sh.eng.StepN(max)
	if err != nil {
		sh.stepErr = err
		sh.mu.Unlock()
		return 0, err
	}
	if sh.jn != nil {
		// Best-effort: a failed append latches the journal (degrading
		// admission) but never stops the clock — in-flight jobs keep
		// scheduling from memory. The un-journaled tail of steps is safe to
		// lose: steps are deterministic, so a restarted engine re-derives
		// them, and the sticky failure guarantees no later admission ever
		// interleaves with the lost tail. A batch is one record: replay
		// re-executes it with StepN, bit-identical to the original steps.
		// Replication mirrors durability exactly: only records that landed
		// on disk stream to the follower, so the follower never holds
		// records a restarted primary would not re-derive.
		rec := journal.StepsRecord(info.Steps, info.Step)
		if err := sh.jn.Append(rec); err == nil {
			sh.commitLocked(rec)
		}
	}
	sh.steps += info.Steps
	for _, id := range info.Released {
		sh.tab.setActive(id)
	}
	for _, id := range info.Completed {
		// Response accounting off the index and the engine's no-copy
		// completion lookup: the pre-index path called eng.Job here, whose
		// defensive work-vector copy was the last per-completion allocation
		// on the steady-state step path.
		done, _ := sh.eng.Completion(id)
		rel, _ := sh.tab.release(id)
		sh.tab.setDone(id, done)
		r := float64(done - rel)
		sh.resp.Observe(r)
		sh.respHist.observe(r)
		sh.completed++
		sh.fairForgetLocked(id)
		if sh.retireDone {
			_ = sh.eng.Retire(id)
		}
	}
	sh.syncGaugesLocked()
	pending := sh.eng.Snapshot().Pending
	// info.Executed/Released/Completed are engine-owned buffers reused by
	// the next step; the event outlives this call (async subscribers), so
	// copy while still holding the lock.
	exec := append([]int(nil), info.Executed...)
	released := sh.namespace(info.Released)
	completed := sh.namespace(info.Completed)
	sh.mu.Unlock()

	ev := Event{
		Shard:     sh.idx,
		Step:      info.Step,
		Executed:  exec,
		Released:  released,
		Completed: completed,
		Active:    info.Active,
		Pending:   pending,
	}
	if info.Steps > 1 {
		ev.Steps = info.Steps
	}
	sh.fan.publish(ev)
	return info.Steps, nil
}

// namespace rewrites engine-local job IDs into pool-wide IDs. For shard 0
// this is the identity, preserving the single-shard wire format.
func (sh *shard) namespace(ids []int) []int {
	if len(ids) == 0 {
		return nil
	}
	// Always copy: the input may be an engine-owned buffer reused by the
	// next step, and published events outlive this call.
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = composeID(sh.idx, id)
	}
	return out
}

// loop is the single goroutine that owns stepping. Each iteration
// executes up to stepBatch steps under one lock and fans the aggregated
// event out; with no work it parks until a submission (or shutdown)
// arrives. After a fatal step error the loop stops stepping but stays up
// for shutdown.
//
// Paced mode (stepEvery > 0) targets one virtual step per stepEvery of
// wall time, anchored at the instant stepping (re)started: each iteration
// owes elapsed/stepEvery + 1 − done steps. When the loop keeps up that is
// exactly one step per tick, as before batching; when it falls behind
// (GC pause, slow scheduling round, many shards per core) the deficit is
// executed as one batched StepN — one lock, one journal append — instead
// of a tick-by-tick crawl. The anchor resets whenever the engine goes
// idle so an empty shard never accrues debt.
func (sh *shard) loop() {
	defer close(sh.done)
	var tick *time.Ticker
	if sh.stepEvery > 0 {
		tick = time.NewTicker(sh.stepEvery)
		defer tick.Stop()
	}
	// stealTimer bounds how long an idle steal-enabled shard parks before
	// re-probing for victims: work arriving at a peer does not kick this
	// shard's wake channel, so the timer is what turns a skewed backlog
	// into fleet-wide drain. Allocated once and reused.
	var stealTimer *time.Timer
	defer func() {
		if stealTimer != nil {
			stealTimer.Stop()
		}
	}()
	var anchor time.Time // zero while idle
	var anchored int64   // steps executed since anchor
	owed := func() int64 {
		return int64(time.Since(anchor)/sh.stepEvery) + 1 - anchored
	}
	for {
		budget := sh.stepBatch
		if tick != nil {
			if anchor.IsZero() {
				anchor, anchored = time.Now(), 0
			}
			budget = owed()
			if budget < 1 {
				budget = 1
			}
			if budget > sh.stepBatch {
				budget = sh.stepBatch
			}
		}
		did, err := sh.stepN(budget)
		if err != nil {
			select {
			case <-sh.stop:
				return
			case <-sh.wake:
				sh.mu.Lock()
				closed := sh.closed
				sh.mu.Unlock()
				if closed {
					return
				}
				continue
			}
		}
		if did == 0 {
			anchor = time.Time{}
			sh.mu.Lock()
			closing := sh.closed
			sh.mu.Unlock()
			if closing {
				return // drained: all admitted work finished
			}
			if sh.stealFn != nil && sh.stealFn() {
				// Pulled pending jobs off the deepest peer; step them now
				// instead of parking.
				continue
			}
			// Idle is the one instant the engine's state collapses to a
			// small checkpoint; compact the journal before parking.
			sh.maybeCompact()
			if sh.stealFn != nil {
				if stealTimer == nil {
					stealTimer = time.NewTimer(stealProbeEvery)
				} else {
					stealTimer.Reset(stealProbeEvery)
				}
				select {
				case <-sh.wake:
				case <-stealTimer.C:
				case <-sh.stop:
					return
				}
				continue
			}
			select {
			case <-sh.wake:
			case <-sh.stop:
				return
			}
			continue
		}
		if sh.stealFn != nil && sh.stealIdle > 0 && sh.loadEstWork.Load() < sh.stealIdle {
			// Near-idle: the round left less estimated work than the
			// configured threshold, so top up from a loaded peer before the
			// queue actually runs dry.
			sh.stealFn()
		}
		if tick != nil {
			anchored += did
			if owed() >= 1 {
				continue // still behind wall time: catch up immediately
			}
			select {
			case <-tick.C:
			case <-sh.stop:
				return
			}
		} else {
			select {
			case <-sh.stop:
				return
			default:
			}
		}
	}
}
