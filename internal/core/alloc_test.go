package core

import (
	"testing"

	"krad/internal/sched"
)

// TestDeqIntoAllocsZero pins the DEQ hot path at zero allocations once the
// caller-owned buffers exist.
func TestDeqIntoAllocsZero(t *testing.T) {
	const n = 64
	desires := make([]int, n)
	for i := range desires {
		desires[i] = 3 + i%17
	}
	allot := make([]int, n)
	scratch := make([]int, n)
	rot := 0
	if avg := testing.AllocsPerRun(200, func() {
		DeqInto(allot, scratch, desires, 41, rot)
		rot++
	}); avg != 0 {
		t.Fatalf("DeqInto allocates %.1f per call; want 0", avg)
	}
}

// TestRADAllotIntoAllocsZero pins RAD's steady-state AllotInto at zero
// allocations, across both the DEQ and round-robin regimes.
func TestRADAllotIntoAllocsZero(t *testing.T) {
	cases := []struct {
		name string
		p    int
	}{
		{"deq", 128},    // |jobs| ≤ p: space sharing
		{"overload", 7}, // |jobs| > p: round-robin cycles
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRAD()
			jobs := make([]sched.CatJob, 32)
			for i := range jobs {
				jobs[i] = sched.CatJob{ID: i, Desire: 1 << 20} // never complete
			}
			dst := make([]int, len(jobs))
			// Warm the scratch buffers and the mark slice.
			for s := int64(1); s <= 4; s++ {
				r.AllotInto(s, jobs, tc.p, dst)
			}
			s := int64(5)
			if avg := testing.AllocsPerRun(200, func() {
				r.AllotInto(s, jobs, tc.p, dst)
				s++
			}); avg != 0 {
				t.Fatalf("AllotInto allocates %.1f per call; want 0", avg)
			}
		})
	}
}

// TestRADLeapTotalsAllocsZero pins the closed-form leap aggregate at zero
// allocations: the engine calls it once per leap with a caller-owned dst,
// and a leap that allocates would eat the rounds it saves.
func TestRADLeapTotalsAllocsZero(t *testing.T) {
	r := NewRAD()
	jobs := make([]sched.CatJob, 24)
	for i := range jobs {
		jobs[i] = sched.CatJob{ID: i, Desire: 1 << 20}
	}
	dst := make([]int, len(jobs))
	const p = 100 // not divisible by 24: the rotating remainder is live
	for s := int64(1); s <= 4; s++ {
		r.AllotInto(s, jobs, p, dst)
	}
	s := int64(5)
	if avg := testing.AllocsPerRun(200, func() {
		for i := range dst {
			dst[i] = 0
		}
		r.LeapTotals(s, jobs, p, 64, dst)
		s += 64
	}); avg != 0 {
		t.Fatalf("LeapTotals allocates %.1f per call; want 0", avg)
	}
}

// TestRADAllotEmptyShared checks the empty-set early return shares one
// allotment slice instead of allocating per step — idle categories are the
// common case in long online runs.
func TestRADAllotEmptyShared(t *testing.T) {
	r := NewRAD()
	a := r.Allot(1, nil, 8)
	b := r.Allot(2, nil, 8)
	if len(a) != 0 || len(b) != 0 {
		t.Fatalf("empty Allot returned %v, %v; want empty", a, b)
	}
	if avg := testing.AllocsPerRun(100, func() { r.Allot(3, nil, 8) }); avg != 0 {
		t.Fatalf("empty Allot allocates %.1f per call; want 0", avg)
	}
	if h := r.StableHorizon(); h != sched.Unbounded {
		t.Fatalf("empty Allot horizon = %d; want Unbounded", h)
	}
	rr := NewRandomRAD(1)
	if got := rr.Allot(1, nil, 8); len(got) != 0 {
		t.Fatalf("RandomRAD empty Allot returned %v", got)
	}
	if h := rr.StableHorizon(); h != sched.Unbounded {
		t.Fatalf("RandomRAD empty Allot horizon = %d; want Unbounded", h)
	}
}
