package fairshare

import "math"

// Usage is an exponentially decayed accumulator over virtual time: the
// deserved-share ledger's memory of how much capacity a leaf has consumed
// recently. A job's cost is added at admission; between updates the value
// halves every HalfLife virtual steps, so yesterday's hog yields today
// once its history decays. The zero value is an empty accumulator.
//
// The struct is a plain value (exported fields, JSON tags) so journal
// snapshots can carry it verbatim: replaying the same Add sequence against
// the same step clock rebuilds bit-identical state — decay is a pure
// function of (value, Δsteps), applied lazily at each touch, never on a
// background clock.
type Usage struct {
	// V is the decayed value as of step AsOf.
	V float64 `json:"v"`
	// AsOf is the virtual step V was last brought current at.
	AsOf int64 `json:"as_of"`
}

// decayFactor is 2^(−Δ/halfLife): the fraction of usage surviving Δ steps.
func decayFactor(delta, halfLife int64) float64 {
	if delta <= 0 {
		return 1
	}
	return math.Exp2(-float64(delta) / float64(halfLife))
}

// At returns the decayed value at step now without mutating the
// accumulator. A now before AsOf (another shard's slower clock) reads the
// stored value undecayed rather than inflating history.
func (u Usage) At(now, halfLife int64) float64 {
	return u.V * decayFactor(now-u.AsOf, halfLife)
}

// Add decays the accumulator to step now, then adds cost. Calls must
// carry a non-decreasing now per accumulator (each leaf's ledger lives on
// one shard, whose virtual clock only moves forward).
func (u *Usage) Add(now, halfLife int64, cost float64) {
	if now > u.AsOf {
		u.V *= decayFactor(now-u.AsOf, halfLife)
		u.AsOf = now
	}
	u.V += cost
}
