package moldable_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/moldable"
	"krad/internal/profile"
	"krad/internal/sched"
	"krad/internal/sim"
)

// These tests live in package moldable_test rather than internal/sim's
// suite because sim's tests cannot import moldable (moldable imports sim).
// They are the engine-level half of the family contract: moldable jobs
// run through the ordinary Step/StepN loop behind sched.WithFloors, leap
// through held phases via the hold law, and stay bit-identical between
// every stepping mode.

// moldCfg is the canonical moldable engine configuration: K-RAD wrapped
// in the floor layer (moldable jobs pin processors non-preemptively).
func moldCfg(k int, caps []int, pick dag.PickPolicy, seed int64, noLeap bool) sim.Config {
	return sim.Config{
		K: k, Caps: caps, Scheduler: sched.WithFloors(core.NewKRAD(k)),
		Pick: pick, Seed: seed, Trace: sim.TraceSteps,
		ValidateAllotments: true, NoLeap: noLeap,
	}
}

// admitAll builds an engine and admits specs in release order.
func admitAll(t *testing.T, cfg sim.Config, specs []sim.JobSpec) *sim.Engine {
	t.Helper()
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ordered := append([]sim.JobSpec(nil), specs...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].Release < ordered[j-1].Release; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	if _, err := eng.AdmitBatch(ordered); err != nil {
		t.Fatal(err)
	}
	return eng
}

// drain steps the engine to completion with huge budgets.
func drain(eng *sim.Engine) error {
	for eng.Remaining() > 0 {
		if _, err := eng.StepN(1 << 40); err != nil {
			return err
		}
	}
	return nil
}

// mixedFamilySpecs draws a random three-family population: moldable jobs
// plus profile and DAG jobs, all with staggered releases.
func mixedFamilySpecs(rng *rand.Rand, k, jobs int) []sim.JobSpec {
	specs := moldable.Generate(moldable.GenOpts{
		K: k, Jobs: 1 + jobs/2, MinTasks: 2, MaxTasks: 10,
		MaxWork: 64, MaxProcs: 8, MaxArrival: 30, Seed: rng.Int63(),
	})
	for len(specs) < jobs {
		release := rng.Int63n(30)
		if rng.Intn(2) == 0 {
			g := dag.New(k)
			var prev []dag.TaskID
			for l := 0; l < 1+rng.Intn(3); l++ {
				cur := g.AddTasks(dag.Category(1+rng.Intn(k)), 1+rng.Intn(6))
				for _, u := range prev {
					g.MustEdge(u, cur[rng.Intn(len(cur))])
				}
				prev = cur
			}
			specs = append(specs, sim.JobSpec{Graph: g, Release: release})
			continue
		}
		phases := make([]profile.Phase, 1+rng.Intn(3))
		for p := range phases {
			tasks := make([]int, k)
			tasks[rng.Intn(k)] = 1 + rng.Intn(200)
			phases[p] = profile.Phase{Tasks: tasks}
		}
		specs = append(specs, sim.JobSpec{Source: profile.MustNew(k, "p", phases), Release: release})
	}
	return specs
}

// TestQuickMoldableStepNEquivalence is the PR's central soundness
// property: a pure-moldable engine driven by StepN (hold-leaps enabled)
// is bit-identical — results, clock, executed totals — to one driven one
// Step at a time (which can never leap), across random workloads, caps
// and pick policies.
func TestQuickMoldableStepNEquivalence(t *testing.T) {
	picks := []dag.PickPolicy{dag.PickFIFO, dag.PickLIFO, dag.PickRandom, dag.PickCPFirst, dag.PickCPLast}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = 1 + rng.Intn(12)
		}
		pick := picks[rng.Intn(len(picks))]
		specs := moldable.Generate(moldable.GenOpts{
			K: k, Jobs: 1 + rng.Intn(8), MinTasks: 1, MaxTasks: 12,
			MaxWork: 100, MaxProcs: 10, MaxArrival: 25, Seed: seed,
		})
		bulk := admitAll(t, moldCfg(k, caps, pick, seed, false), specs)
		single := admitAll(t, moldCfg(k, caps, pick, seed, false), specs)
		if err := drain(bulk); err != nil {
			t.Logf("seed %d: bulk: %v", seed, err)
			return false
		}
		for single.Remaining() > 0 {
			if _, err := single.Step(); err != nil {
				t.Logf("seed %d: single: %v", seed, err)
				return false
			}
		}
		if !reflect.DeepEqual(bulk.Result(), single.Result()) {
			t.Logf("seed %d (pick %v): results diverged", seed, pick)
			return false
		}
		sb, ss := bulk.Snapshot(), single.Snapshot()
		if sb.Now != ss.Now || !reflect.DeepEqual(sb.ExecutedTotal, ss.ExecutedTotal) {
			t.Logf("seed %d (pick %v): snapshots diverged", seed, pick)
			return false
		}
		if ss.LeapSteps != 0 {
			t.Logf("seed %d: single-step engine recorded %d leap steps", seed, ss.LeapSteps)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMixedFamilyEquivalence runs all three families — profile, DAG
// and moldable — through one engine step loop and checks leap-on against
// leap-off (NoLeap) bit-identically, plus chunk invariance on the leap-on
// side (random StepN budgets vs one big drain).
func TestQuickMixedFamilyEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = 1 + rng.Intn(16)
		}
		specs := mixedFamilySpecs(rng, k, 2+rng.Intn(8))
		on := admitAll(t, moldCfg(k, caps, dag.PickFIFO, seed, false), specs)
		off := admitAll(t, moldCfg(k, caps, dag.PickFIFO, seed, true), specs)
		chunked := admitAll(t, moldCfg(k, caps, dag.PickFIFO, seed, false), specs)
		if err := drain(on); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := drain(off); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for chunked.Remaining() > 0 {
			if _, err := chunked.StepN(1 + rng.Int63n(9)); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		ron, roff, rch := on.Result(), off.Result(), chunked.Result()
		if !reflect.DeepEqual(ron, roff) {
			t.Logf("seed %d: leap-on vs leap-off diverged", seed)
			return false
		}
		if !reflect.DeepEqual(ron, rch) {
			t.Logf("seed %d: chunked results diverged", seed)
			return false
		}
		son, soff := on.Snapshot(), off.Snapshot()
		return son.Now == soff.Now && reflect.DeepEqual(son.ExecutedTotal, soff.ExecutedTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMoldableHoldLeapActuallyFires guards the hold-law fast path: chain
// jobs with long non-preemptive leases spend almost all their steps held,
// and the engine must cover those phases via leaps rather than re-running
// the scheduler every step. It also pins the blocked-reason accounting:
// the only refusals on this workload are Hold refusals (start boundaries
// where an unheld moldable job blocks the window).
func TestMoldableHoldLeapActuallyFires(t *testing.T) {
	var specs []sim.JobSpec
	for j := 0; j < 4; j++ {
		spec := chainSpec(2, 1+j%2, 6, 4000, 4)
		src, err := moldable.FromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, sim.JobSpec{Source: src})
	}
	eng := admitAll(t, moldCfg(2, []int{8, 8}, dag.PickFIFO, 1, false), specs)
	if err := drain(eng); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap.LeapSteps == 0 {
		t.Fatal("no event-leaps fired on an all-held moldable workload")
	}
	if ratio := float64(snap.LeapSteps) / float64(snap.Now); ratio < 0.9 {
		t.Fatalf("leaps covered only %.1f%% of %d steps; want ≥ 90%%", ratio*100, snap.Now)
	}
	b := snap.LeapBlocked
	if b.Hold == 0 {
		t.Error("no hold refusals recorded; start boundaries should block the window")
	}
	if b.NoLeap != 0 || b.Speed != 0 || b.Observer != 0 || b.Trace != 0 || b.Floors != 0 || b.Runtime != 0 {
		t.Errorf("unexpected blocked reasons on a clean moldable workload: %+v", b)
	}
	// Every job must report its family through the status API.
	for id := range specs {
		st, ok := eng.Job(id)
		if !ok || st.Family != sim.FamilyMoldable {
			t.Fatalf("job %d family = %v, want moldable", id, st.Family)
		}
	}
}

// TestTimedFloorsStillBlockLeaps pins the reason split: floor-bearing jobs
// without the hold capability (the timed family) must keep refusing under
// Floors, not under the new Hold reason.
func TestTimedFloorsStillBlockLeaps(t *testing.T) {
	g := dag.New(1)
	u, v := g.AddTask(1), g.AddTask(1)
	g.MustEdge(u, v)
	g.SetDuration(u, 400)
	g.SetDuration(v, 400)
	specs := []sim.JobSpec{
		{Source: sim.TimedGraphSource(g)},
		{Source: profile.MustNew(1, "p", []profile.Phase{{Tasks: []int{3000}}})},
	}
	eng := admitAll(t, moldCfg(1, []int{8}, dag.PickFIFO, 1, false), specs)
	if err := drain(eng); err != nil {
		t.Fatal(err)
	}
	b := eng.Snapshot().LeapBlocked
	if b.Floors == 0 {
		t.Errorf("timed job produced no Floors refusals: %+v", b)
	}
	if b.Hold != 0 {
		t.Errorf("timed job counted under Hold, want Floors: %+v", b)
	}
}

// TestMoldableStepAllocsZero pins the held-phase single-step path — floor
// projection in WithFloors, the hold detection scan, lease countdown — at
// zero steady-state allocations, the moldable analogue of sim's
// TestEngineStepAllocsZero.
func TestMoldableStepAllocsZero(t *testing.T) {
	var specs []sim.JobSpec
	for j := 0; j < 4; j++ {
		src, err := moldable.FromSpec(chainSpec(2, 1+j%2, 2, 1<<22, 4))
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, sim.JobSpec{Source: src})
	}
	cfg := moldCfg(2, []int{8, 8}, dag.PickFIFO, 1, true)
	cfg.Trace = sim.TraceNone
	cfg.ValidateAllotments = false
	cfg.MaxSteps = 1 << 40
	eng := admitAll(t, cfg, specs)
	for i := 0; i < 8; i++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("steady-state moldable Engine.Step allocates %.1f per call; want 0", avg)
	}
}

// TestMoldableStepNLeapAllocsZero pins the hold-leap round itself —
// HoldFor scan, LeapTotals with floors, LeapHold countdown — at zero
// steady-state allocations.
func TestMoldableStepNLeapAllocsZero(t *testing.T) {
	var specs []sim.JobSpec
	for j := 0; j < 4; j++ {
		src, err := moldable.FromSpec(chainSpec(2, 1+j%2, 2, 1<<22, 4))
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, sim.JobSpec{Source: src})
	}
	cfg := moldCfg(2, []int{8, 8}, dag.PickFIFO, 1, false)
	cfg.Trace = sim.TraceNone
	cfg.ValidateAllotments = false
	cfg.MaxSteps = 1 << 40
	eng := admitAll(t, cfg, specs)
	for i := 0; i < 8; i++ {
		if _, err := eng.StepN(64); err != nil {
			t.Fatal(err)
		}
	}
	var leaps int64
	if avg := testing.AllocsPerRun(100, func() {
		info, err := eng.StepN(64)
		if err != nil {
			t.Fatal(err)
		}
		leaps += info.LeapSteps
	}); avg != 0 {
		t.Fatalf("steady-state moldable Engine.StepN allocates %.1f per call; want 0", avg)
	}
	if leaps == 0 {
		t.Fatal("StepN(64) rounds never leaped on long moldable leases; the test is not exercising the hold-leap path")
	}
}

// TestMoldableCompetitiveRatio checks the execution against the
// list-scheduling envelope of arXiv 2106.07059 / 2509.01811: with the
// ½-efficiency molding rule, the makespan of a batch workload stays
// within a small constant of the area and critical-path lower bounds.
// The asserted constant is generous (the per-category bound is
// 2·Σ work/caps + 2·span-shaped); a regression that breaks molding or
// floor-respecting execution overshoots it immediately.
func TestMoldableCompetitiveRatio(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		caps := []int{6, 9, 4}
		specs := moldable.Generate(moldable.GenOpts{
			K: 3, Jobs: 24, MinTasks: 4, MaxTasks: 20,
			MaxWork: 48, MaxProcs: 12, Seed: seed,
		})
		eng := admitAll(t, moldCfg(3, caps, dag.PickCPFirst, seed, false), specs)
		if err := drain(eng); err != nil {
			t.Fatal(err)
		}
		res := eng.Result()
		var lb, maxSpan int64
		var area float64
		for _, s := range specs {
			if sp := int64(s.Source.Span()); sp > maxSpan {
				maxSpan = sp
			}
		}
		work := make([]int64, 3)
		for _, s := range specs {
			for a, w := range s.Source.WorkVector() {
				work[a] += int64(w)
			}
		}
		for a, w := range work {
			area += float64(w) / float64(caps[a])
			if v := (w + int64(caps[a]) - 1) / int64(caps[a]); v > lb {
				lb = v
			}
		}
		if maxSpan > lb {
			lb = maxSpan
		}
		if res.Makespan < lb {
			t.Fatalf("seed %d: makespan %d below the lower bound %d — accounting is broken", seed, res.Makespan, lb)
		}
		ub := 2*area + 2*float64(maxSpan) + 8
		if float64(res.Makespan) > ub {
			t.Fatalf("seed %d: makespan %d exceeds the list-scheduling envelope %.1f (area %.1f, span %d)",
				seed, res.Makespan, ub, area, maxSpan)
		}
	}
}
