package sim_test

import (
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/profile"
	"krad/internal/sim"
)

func TestRetireLifecycle(t *testing.T) {
	eng, err := sim.NewEngine(sim.Config{
		K: 2, Caps: []int{4, 4}, Scheduler: core.NewKRAD(2), Pick: dag.PickFIFO,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.JobSpec{Source: profile.MustNewRigid(2, "r", 1, 2, 2)}
	id, err := eng.Admit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Pending and active jobs cannot be retired.
	if err := eng.Retire(id); err == nil {
		t.Fatalf("retired a pending job")
	}
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Retire(id); err == nil {
		t.Fatalf("retired an active job")
	}
	for !eng.Idle() {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := eng.Job(id)
	if !ok || st.Phase != sim.JobDone {
		t.Fatalf("job not done: %+v ok=%v", st, ok)
	}
	if err := eng.Retire(id); err != nil {
		t.Fatalf("Retire: %v", err)
	}
	// Retired jobs are forgotten: status gone, cancel/retire report no job,
	// but aggregate counters still include them.
	if _, ok := eng.Job(id); ok {
		t.Fatalf("retired job still visible")
	}
	if _, ok := eng.Completion(id); ok {
		t.Fatalf("retired job still has a completion")
	}
	if err := eng.Retire(id); err == nil {
		t.Fatalf("double retire accepted")
	}
	if err := eng.Cancel(id); err == nil {
		t.Fatalf("cancel of retired job accepted")
	}
	snap := eng.Snapshot()
	if snap.Admitted != 1 || snap.Completed != 1 {
		t.Fatalf("counters dropped the retired job: %+v", snap)
	}
	if jobs := eng.Result().Jobs; len(jobs) != 0 {
		t.Fatalf("Result includes retired jobs: %v", jobs)
	}
	// Retirement never reassigns IDs.
	id2, err := eng.Admit(sim.JobSpec{Source: profile.MustNewRigid(2, "r2", 2, 1, 1), Release: eng.Now()})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id+1 {
		t.Fatalf("ID after retire = %d, want %d", id2, id+1)
	}
}

func TestRetireCancelled(t *testing.T) {
	eng, err := sim.NewEngine(sim.Config{
		K: 1, Caps: []int{2}, Scheduler: core.NewKRAD(1), Pick: dag.PickFIFO,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := eng.Admit(sim.JobSpec{Source: profile.MustNewRigid(1, "c", 1, 1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if err := eng.Retire(id); err != nil {
		t.Fatalf("Retire cancelled: %v", err)
	}
	if snap := eng.Snapshot(); snap.Cancelled != 1 {
		t.Fatalf("cancelled counter lost: %+v", snap)
	}
}

// TestRetireCheckpointRestore covers the sparse checkpoint: retired jobs
// are omitted from the table but the ID watermark and terminal counters
// carry over, so a restored engine assigns the same future IDs and reports
// the same aggregate stats.
func TestRetireCheckpointRestore(t *testing.T) {
	cfg := sim.Config{
		K: 2, Caps: []int{4, 4}, Scheduler: core.NewKRAD(2), Pick: dag.PickFIFO,
	}
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for i := 0; i < 5; i++ {
		id, err := eng.Admit(sim.JobSpec{Source: profile.MustNewRigid(2, "r", 1, 2, 2), Release: eng.Now()})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := eng.Cancel(ids[4]); err != nil {
		t.Fatal(err)
	}
	for !eng.Idle() {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Retire jobs 0, 2 and 4; keep 1 and 3 in the table.
	for _, id := range []int{ids[0], ids[2], ids[4]} {
		if err := eng.Retire(id); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Jobs) != 2 || cp.NextID != 5 || cp.Completed != 4 || cp.Cancelled != 1 {
		t.Fatalf("checkpoint shape: jobs=%d next=%d done=%d cancelled=%d",
			len(cp.Jobs), cp.NextID, cp.Completed, cp.Cancelled)
	}
	restored, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(cp); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// Surviving jobs are queryable, retired ones are not.
	if st, ok := restored.Job(ids[1]); !ok || st.Phase != sim.JobDone {
		t.Fatalf("job 1 lost across restore: %+v ok=%v", st, ok)
	}
	if _, ok := restored.Job(ids[0]); ok {
		t.Fatalf("retired job 0 resurrected")
	}
	snap, orig := restored.Snapshot(), eng.Snapshot()
	if snap.Admitted != orig.Admitted || snap.Completed != orig.Completed || snap.Cancelled != orig.Cancelled {
		t.Fatalf("restored counters %+v != original %+v", snap, orig)
	}
	id, err := restored.Admit(sim.JobSpec{Source: profile.MustNewRigid(2, "next", 1, 1, 1), Release: restored.Now()})
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 {
		t.Fatalf("post-restore ID = %d, want 5", id)
	}
}

func TestRestoreRejectsBadSparseCheckpoints(t *testing.T) {
	cfg := sim.Config{
		K: 1, Caps: []int{1}, Scheduler: core.NewKRAD(1), Pick: dag.PickFIFO,
	}
	job := sim.CheckpointJob{ID: 0, Phase: sim.JobDone, Completion: 1, Work: []int{1}, Span: 1}
	cases := []struct {
		name string
		cp   sim.EngineCheckpoint
	}{
		{"next below table", sim.EngineCheckpoint{Jobs: []sim.CheckpointJob{job, {ID: 1, Phase: sim.JobDone, Completion: 1, Work: []int{1}, Span: 1}}, NextID: 1, Completed: 2}},
		{"descending ids", sim.EngineCheckpoint{Jobs: []sim.CheckpointJob{{ID: 1, Phase: sim.JobDone, Completion: 1, Work: []int{1}, Span: 1}, job}, NextID: 2, Completed: 2}},
		{"counters below table", sim.EngineCheckpoint{Jobs: []sim.CheckpointJob{job}, NextID: 2, Cancelled: 2}},
		{"counters not covering", sim.EngineCheckpoint{Jobs: []sim.CheckpointJob{job}, NextID: 3, Completed: 1, Cancelled: 1}},
	}
	for _, c := range cases {
		eng, err := sim.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Restore(c.cp); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestEngineAdmitRecycledAllocsZero is the tentpole pin: once a retired
// job slot exists, a full admit → drain → retire cycle of a rigid job
// allocates nothing — the free list recycles the jobState, AppendWork the
// work vector, ReuseRuntime the runtime. This is the steady state of a
// long-running service under sustained arrival streams.
func TestEngineAdmitRecycledAllocsZero(t *testing.T) {
	const k = 3
	eng, err := sim.NewEngine(sim.Config{
		K: k, Caps: []int{13, 7, 5}, Scheduler: core.NewKRAD(k),
		Pick: dag.PickFIFO, MaxSteps: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.JobSpec{Source: profile.MustNewRigid(k, "r", 2, 3, 4)}
	cycle := func() {
		spec.Release = eng.Now()
		id, err := eng.Admit(spec)
		if err != nil {
			t.Fatal(err)
		}
		for !eng.Idle() {
			if _, err := eng.StepN(16); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Retire(id); err != nil {
			t.Fatal(err)
		}
	}
	// Warm: the jobs table only ever grows (IDs are monotonic), so push its
	// capacity far enough past the measured window that the 201 measured
	// admissions never cross an append doubling.
	for i := 0; i < 600; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("steady-state Admit/drain/Retire cycle allocates %.1f per run; want 0", avg)
	}
}
