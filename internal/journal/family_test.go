package journal

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/moldable"
	"krad/internal/profile"
	"krad/internal/sched"
	"krad/internal/sim"
)

// moldSpec returns a small valid moldable wire spec.
func moldSpec(name string, tasks int) moldable.Spec {
	s := moldable.Spec{K: 2, Name: name}
	for v := 0; v < tasks; v++ {
		s.Tasks = append(s.Tasks, moldable.TaskSpec{
			Cat: 1 + v%2, Work: 6 + v, Max: 4,
			Curve: moldable.CurveSpec{Type: moldable.CurvePowerLaw, Alpha: 0.5},
		})
		if v > 0 {
			s.Edges = append(s.Edges, [2]int{v - 1, v})
		}
	}
	return s
}

func moldJob(t *testing.T, name string, tasks int) *moldable.Job {
	t.Helper()
	j, err := moldable.FromSpec(moldSpec(name, tasks))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// moldEngine builds an engine able to run moldable jobs (K-RAD behind the
// floor layer).
func moldEngine(t *testing.T) *sim.Engine {
	t.Helper()
	eng, err := sim.NewEngine(sim.Config{
		K: 2, Caps: []int{4, 4}, Scheduler: sched.WithFloors(core.NewKRAD(2)),
		Pick: dag.PickFIFO,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestGraphRecordsKeepLegacyEncoding is the backward-compat contract in
// the byte domain: admit/batch records for graph-backed jobs must encode
// without any of the PR's new keys (v, fam, mold), so journals written by
// this build and a pre-family build are interchangeable for graph
// workloads.
func TestGraphRecordsKeepLegacyEncoding(t *testing.T) {
	rec, err := AdmitRecord(0, []sim.JobSpec{
		{Graph: dag.UniformChain(1, 3, 1)},
		{Graph: dag.UniformChain(1, 2, 1), Release: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"v"`, `"fam"`, `"mold"`} {
		if bytes.Contains(payload, []byte(key)) {
			t.Errorf("graph-backed record payload contains %s: %s", key, payload)
		}
	}
	// Decode → re-encode is byte-identical (no normalization drift).
	back, err := decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	payload2, err := encodeRecord(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, payload2) {
		t.Fatalf("graph record did not round-trip byte-identically:\n %s\n %s", payload, payload2)
	}
}

// TestLegacyPayloadDecodesAndReplays feeds hand-written journal payloads
// in the pre-family encoding — no v, no fam, graphs only — through
// decodeRecord and Replay, and checks the rebuilt engine against one
// driven directly. Old journals must keep replaying bit-identically.
func TestLegacyPayloadDecodesAndReplays(t *testing.T) {
	legacy := []string{
		`{"t":"admit","jobs":[{"release":0,"graph":{"k":2,"categories":[1,2,1,2],"edges":[[0,1],[1,2],[2,3]]}}]}`,
		`{"t":"step","now":1}`,
		`{"t":"step","now":2}`,
		`{"t":"steps","now":4,"n":2}`,
	}
	var recs []Record
	for i, raw := range legacy {
		rec, err := decodeRecord([]byte(raw))
		if err != nil {
			t.Fatalf("legacy payload %d rejected: %v", i, err)
		}
		if rec.V != 0 {
			t.Fatalf("legacy payload %d decoded with version %d", i, rec.V)
		}
		recs = append(recs, rec)
	}
	replayed := moldEngine(t)
	if err := Replay(replayed, recs); err != nil {
		t.Fatal(err)
	}

	direct := moldEngine(t)
	g := dag.New(2)
	ts := []dag.TaskID{g.AddTask(1), g.AddTask(2), g.AddTask(1), g.AddTask(2)}
	for i := 0; i+1 < len(ts); i++ {
		g.MustEdge(ts[i], ts[i+1])
	}
	if _, err := direct.Admit(sim.JobSpec{Graph: g}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{1, 1, 2} {
		if _, err := direct.StepN(n); err != nil {
			t.Fatal(err)
		}
	}
	sr, sd := replayed.Snapshot(), direct.Snapshot()
	if sr.Now != sd.Now || !reflect.DeepEqual(sr.ExecutedTotal, sd.ExecutedTotal) || sr.Completed != sd.Completed {
		t.Fatalf("legacy replay diverged from direct run:\nreplay %+v\ndirect %+v", sr, sd)
	}
}

// TestMoldableJournalRoundTrip drives a mixed graph+moldable engine while
// journaling every mutation, reopens the WAL, replays into a fresh
// engine, and requires bit-identical state — the family tag and spec
// payload must survive the disk round trip.
func TestMoldableJournalRoundTrip(t *testing.T) {
	path := tempJournal(t)
	j, _ := mustOpen(t, path, Options{})

	live := moldEngine(t)
	specs := []sim.JobSpec{
		{Source: moldJob(t, "m0", 4)},
		{Graph: dag.UniformChain(2, 3, 1)},
		{Source: moldJob(t, "m1", 3), Release: 2},
	}
	ids, err := live.AdmitBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := AdmitRecord(ids[0], specs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.V != recordVersion {
		t.Fatalf("mixed batch record version %d, want %d", rec.V, recordVersion)
	}
	mustAppend(t, j, rec)
	for live.Remaining() > 0 {
		info, err := live.StepN(5)
		if err != nil {
			t.Fatal(err)
		}
		mustAppend(t, j, StepsRecord(info.Steps, info.Step))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recovered := mustOpen(t, path, Options{})
	defer j2.Close()
	got := recovered[0]
	if got.V != recordVersion {
		t.Fatalf("recovered record version %d, want %d", got.V, recordVersion)
	}
	if got.Jobs[0].Fam != "moldable" || got.Jobs[0].Mold == nil || got.Jobs[1].Fam != "" || got.Jobs[1].Graph == nil {
		t.Fatalf("recovered job records lost family tags: %+v", got.Jobs)
	}
	replayed := moldEngine(t)
	if err := Replay(replayed, recovered); err != nil {
		t.Fatal(err)
	}
	sl, sr := live.Snapshot(), replayed.Snapshot()
	if sl.Now != sr.Now || !reflect.DeepEqual(sl.ExecutedTotal, sr.ExecutedTotal) ||
		sl.Completed != sr.Completed || sl.Makespan != sr.Makespan {
		t.Fatalf("moldable replay diverged:\nlive   %+v\nreplay %+v", sl, sr)
	}
	if !reflect.DeepEqual(live.Result(), replayed.Result()) {
		t.Fatal("per-job results diverged after moldable replay")
	}
	// The engine must also agree about what family each job belongs to.
	for i, id := range ids {
		st, ok := replayed.Job(id)
		if !ok {
			t.Fatalf("replayed engine lost job %d", id)
		}
		want := sim.FamilyMoldable
		if specs[i].Graph != nil {
			want = sim.FamilyDAG
		}
		if st.Family != want {
			t.Fatalf("replayed job %d family = %v, want %v", id, st.Family, want)
		}
	}
}

// TestRecordValidationRejectsFamilyShapes exercises the versioned-record
// validation: every malformed family/version combination must be rejected
// on both encode and decode.
func TestRecordValidationRejectsFamilyShapes(t *testing.T) {
	sp := moldSpec("m", 2)
	g := dag.UniformChain(1, 2, 1)
	cases := []struct {
		name string
		rec  Record
		want string
	}{
		{"both-graph-and-mold", Record{Type: TypeAdmit, V: recordVersion,
			Jobs: []JobRecord{{Graph: g, Mold: &sp, Fam: "moldable"}}},
			"2 job payloads"},
		{"mold-and-rigid", Record{Type: TypeAdmit, V: recordVersion,
			Jobs: []JobRecord{{Mold: &sp, Rigid: &profile.RigidSpec{K: 2, Cat: 1, Procs: 1, Steps: 1}, Fam: "moldable"}}},
			"2 job payloads"},
		{"rigid-without-version", Record{Type: TypeAdmit,
			Jobs: []JobRecord{{Rigid: &profile.RigidSpec{K: 2, Cat: 1, Procs: 1, Steps: 1}, Fam: "profile"}}},
			"record version is 0"},
		{"rigid-wrong-fam", Record{Type: TypeAdmit, V: recordVersion,
			Jobs: []JobRecord{{Rigid: &profile.RigidSpec{K: 2, Cat: 1, Procs: 1, Steps: 1}, Fam: "moldable"}}},
			`family tag "moldable"`},
		{"mold-without-version", Record{Type: TypeAdmit,
			Jobs: []JobRecord{{Mold: &sp, Fam: "moldable"}}},
			"record version is 0"},
		{"mold-wrong-fam", Record{Type: TypeAdmit, V: recordVersion,
			Jobs: []JobRecord{{Mold: &sp, Fam: "dag"}}},
			`family tag "dag"`},
		{"mold-missing-fam", Record{Type: TypeAdmit, V: recordVersion,
			Jobs: []JobRecord{{Mold: &sp}}},
			"family tag"},
		{"graph-with-fam", Record{Type: TypeAdmit,
			Jobs: []JobRecord{{Graph: g, Fam: "dag"}}},
			"graph-backed but tagged"},
		{"bad-version", Record{Type: TypeAdmit, V: 7,
			Jobs: []JobRecord{{Graph: g}}},
			"version 7"},
		{"versioned-step", Record{Type: TypeStep, V: recordVersion, Now: 3},
			"stray fields"},
		{"no-payload", Record{Type: TypeAdmit, Jobs: []JobRecord{{}}},
			"no graph"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := encodeRecord(tc.rec)
			if err == nil {
				t.Fatal("invalid record encoded")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestCorruptMoldPayloadFailsReplayLocated checks that a CRC-valid but
// semantically broken moldable payload fails replay with an error naming
// the record and job, not a panic from inside the engine.
func TestCorruptMoldPayloadFailsReplayLocated(t *testing.T) {
	raw := `{"t":"admit","v":2,"jobs":[{"release":0,"fam":"moldable","mold":` +
		`{"k":1,"tasks":[{"cat":1,"work":0,"max":1,"curve":{"type":"powerlaw","alpha":0.5}}]}}]}`
	rec, err := decodeRecord([]byte(raw))
	if err != nil {
		t.Fatalf("structurally valid record rejected at decode: %v", err)
	}
	err = Replay(moldEngine(t), []Record{rec})
	if err == nil {
		t.Fatal("replay accepted an invalid moldable spec")
	}
	for _, frag := range []string{"record 0", "job 0", "work 0"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("replay error %q does not contain %q", err, frag)
		}
	}
}

// TestUnjournalableSourceRejected pins AdmitRecord's refusal for runtime
// families with no wire encoding (profile jobs): the server must get a
// clear error instead of writing a record replay cannot honor.
func TestUnjournalableSourceRejected(t *testing.T) {
	src := profile.MustNew(1, "p", []profile.Phase{{Tasks: []int{3}}})
	_, err := AdmitRecord(5, []sim.JobSpec{{Source: src}})
	if err == nil {
		t.Fatal("profile job admitted into a journal record")
	}
	if !strings.Contains(err.Error(), "job 5") || !strings.Contains(err.Error(), `family "profile"`) {
		t.Fatalf("error %q should name the job and family", err)
	}
}
