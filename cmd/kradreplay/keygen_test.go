package main

import "testing"

// TestKeyGenPinned pins the skewed distributions for a fixed seed: the
// zipf stream must concentrate on key-0 with a polynomial tail, the hot
// stream must put ~90% of batches on key-hot. A refactor that perturbs
// the generator (different rng stream, exponent, or key naming) breaks
// reproducibility of recorded benchmarks and fails here.
func TestKeyGenPinned(t *testing.T) {
	const n = 10000

	t.Run("zipf", func(t *testing.T) {
		gen, err := newKeyGen("zipf", 42, 64)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for i := 0; i < n; i++ {
			counts[gen()]++
		}
		// Zipf(s=1.2) over 64 keys: key-0 dominates, key-1 roughly
		// a factor 2^1.2 ≈ 2.3 behind. Loose bands keep the test
		// robust to rng-stream details while pinning the shape.
		if c := counts["key-0"]; c < n/5 {
			t.Fatalf("key-0 got %d of %d draws; want a dominant head", c, n)
		}
		if counts["key-0"] <= counts["key-1"] || counts["key-1"] <= counts["key-8"] {
			t.Fatalf("frequencies not decreasing: key-0=%d key-1=%d key-8=%d",
				counts["key-0"], counts["key-1"], counts["key-8"])
		}
	})

	t.Run("hot", func(t *testing.T) {
		gen, err := newKeyGen("hot", 42, 64)
		if err != nil {
			t.Fatal(err)
		}
		hot := 0
		for i := 0; i < n; i++ {
			if gen() == "key-hot" {
				hot++
			}
		}
		if hot < n*85/100 || hot > n*95/100 {
			t.Fatalf("key-hot got %d of %d draws; want ~90%%", hot, n)
		}
	})

	t.Run("deterministic", func(t *testing.T) {
		a, _ := newKeyGen("zipf", 7, 16)
		b, _ := newKeyGen("zipf", 7, 16)
		for i := 0; i < 100; i++ {
			if ka, kb := a(), b(); ka != kb {
				t.Fatalf("draw %d: %q vs %q for identical seeds", i, ka, kb)
			}
		}
	})

	t.Run("off", func(t *testing.T) {
		for _, s := range []string{"", "none"} {
			gen, err := newKeyGen(s, 1, 64)
			if err != nil || gen != nil {
				t.Fatalf("skew %q: gen set=%v err=%v; want nil,nil", s, gen != nil, err)
			}
		}
		if _, err := newKeyGen("bogus", 1, 64); err == nil {
			t.Fatal("unknown skew accepted")
		}
	})
}
