package dag

import (
	"math/rand"
	"testing"
)

func TestWorkCountsPerCategory(t *testing.T) {
	g := New(3)
	g.AddTasks(1, 4)
	g.AddTasks(2, 2)
	g.AddTasks(3, 5)
	if got := g.Work(1); got != 4 {
		t.Errorf("Work(1) = %d, want 4", got)
	}
	if got := g.Work(2); got != 2 {
		t.Errorf("Work(2) = %d, want 2", got)
	}
	if got := g.Work(3); got != 5 {
		t.Errorf("Work(3) = %d, want 5", got)
	}
	wv := g.WorkVector()
	if wv[0] != 4 || wv[1] != 2 || wv[2] != 5 {
		t.Errorf("WorkVector = %v", wv)
	}
	if g.TotalWork() != 11 {
		t.Errorf("TotalWork = %d, want 11", g.TotalWork())
	}
}

func TestCriticalPathLengthEqualsSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		g := Random(3, RandomOpts{Tasks: 1 + rng.Intn(80), EdgeProb: 0.15, Window: 10}, rng)
		cp := g.CriticalPath()
		if len(cp) != g.Span() {
			t.Fatalf("iter %d: critical path length %d != span %d", i, len(cp), g.Span())
		}
		// Consecutive path nodes must be connected by edges.
		for j := 0; j+1 < len(cp); j++ {
			found := false
			for _, v := range g.Successors(cp[j]) {
				if v == cp[j+1] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("iter %d: path nodes %d→%d not adjacent", i, cp[j], cp[j+1])
			}
		}
	}
}

func TestProfileSumsToWork(t *testing.T) {
	g := Figure1()
	prof := g.Profile()
	if len(prof) != g.Span() {
		t.Fatalf("profile has %d rows, span is %d", len(prof), g.Span())
	}
	sums := make([]int, g.K())
	for _, row := range prof {
		for a, v := range row {
			sums[a] += v
		}
	}
	for a, w := range g.WorkVector() {
		if sums[a] != w {
			t.Errorf("category %d: profile sum %d != work %d", a+1, sums[a], w)
		}
	}
}

func TestMaxParallelism(t *testing.T) {
	g := ForkJoin(2, 9, 1, 2, 1)
	mp := g.MaxParallelism()
	if mp[0] != 1 {
		t.Errorf("category 1 max parallelism = %d, want 1", mp[0])
	}
	if mp[1] != 9 {
		t.Errorf("category 2 max parallelism = %d, want 9", mp[1])
	}
}

func TestFigure1Shape(t *testing.T) {
	g := Figure1()
	if g.K() != 3 {
		t.Errorf("K = %d, want 3", g.K())
	}
	if g.NumTasks() != 10 {
		t.Errorf("tasks = %d, want 10", g.NumTasks())
	}
	if g.Span() != 5 {
		t.Errorf("span = %d, want 5", g.Span())
	}
	for c := Category(1); c <= 3; c++ {
		if g.Work(c) == 0 {
			t.Errorf("category %d has no tasks", c)
		}
	}
}
