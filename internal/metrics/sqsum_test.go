package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSqSumKnownValues(t *testing.T) {
	cases := []struct {
		in   []int
		want int64
	}{
		{nil, 0},
		{[]int{5}, 5},
		{[]int{1, 2}, 1*2 + 2*1},          // sorted 1,2: weights 2,1
		{[]int{3, 1, 2}, 1*3 + 2*2 + 3*1}, // sorted 1,2,3: weights 3,2,1
		{[]int{4, 4, 4}, 4*3 + 4*2 + 4*1},
		{[]int{0, 0, 7}, 7},
	}
	for _, c := range cases {
		if got := SqSum(c.in); got != c.want {
			t.Errorf("SqSum(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSqSumDoesNotMutate(t *testing.T) {
	in := []int{3, 1, 2}
	SqSum(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestSqSumPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative value")
		}
	}()
	SqSum([]int{1, -2})
}

// TestQuickSqSumMinimizesOverPermutations verifies the equivalence of
// Definition 4 (ascending order) and Equation (4) (minimum over all
// permutations) on random inputs: no random permutation may beat it.
func TestQuickSqSumMinimizesOverPermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(50)
		}
		best := SqSum(vals)
		perm := make([]int, n)
		for trial := 0; trial < 30; trial++ {
			for i, p := range rng.Perm(n) {
				perm[i] = p
			}
			if SqSumPermuted(vals, perm) < best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSqSumSuperadditive: adding work never decreases the squashed sum.
func TestQuickSqSumMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(40)
			b[i] = a[i] + rng.Intn(5)
		}
		return SqSum(b) >= SqSum(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSquashedWorkArea(t *testing.T) {
	// works {2, 4} on 2 processors: sq-sum = 2·2 + 4·1 = 8; swa = 4.
	if got := SquashedWorkArea([]int{2, 4}, 2); got != 4 {
		t.Errorf("swa = %v, want 4", got)
	}
}

func TestCheckLemma4KnownCase(t *testing.T) {
	// a = {0,0}, s = {2,2}, h = 2: l = 2, P = 4.
	// sq-sum(b) = 2·2+2·1 = 6 ≥ sq-sum(a) + 4·3/2 = 6. Tight.
	left, right, ok := CheckLemma4([]int{0, 0}, []int{2, 2}, 2)
	if !ok {
		t.Fatal("hypothesis rejected")
	}
	if left < right {
		t.Errorf("Lemma 4 violated: %v < %v", left, right)
	}
	if left != 6 || right != 6 {
		t.Errorf("left=%v right=%v, want 6/6", left, right)
	}
}

func TestCheckLemma4RejectsBadHypothesis(t *testing.T) {
	if _, _, ok := CheckLemma4([]int{1}, []int{1}, 3); ok {
		t.Error("accepted l = 0")
	}
	if _, _, ok := CheckLemma4([]int{1}, []int{0}, 3); ok {
		t.Error("accepted negative s")
	}
	if _, _, ok := CheckLemma4([]int{0}, []int{9}, 3); ok {
		t.Error("accepted s > h")
	}
	if _, _, ok := CheckLemma4([]int{0, 0}, []int{1}, 1); ok {
		t.Error("accepted mismatched lengths")
	}
}

// TestQuickLemma4Holds validates Lemma 4 itself on random instances — the
// supporting lemma behind the Theorem 5 induction.
func TestQuickLemma4Holds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		h := 1 + rng.Intn(6)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(30)
			s := rng.Intn(h + 1)
			if i == 0 {
				s = h // force l ≥ 1 so the hypothesis holds
			}
			b[i] = a[i] + s
		}
		left, right, ok := CheckLemma4(a, b, h)
		if !ok {
			return false
		}
		return left >= right
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
