package workload

import (
	"strings"
	"testing"

	"krad/internal/dag"
)

const sampleSWF = `; sample log
; header comment
1 0 0 120 4 -1 -1 4 120 -1 1 1 1 1 1 1 -1 -1
2 60 0 600 8 -1 -1 8 600 -1 1 1 1 2 1 2 -1 -1

3 90 0 -1 4 -1 -1 4 -1 -1 0 1 1 1 1 1 -1 -1
4 120 0 60 -1 -1 -1 2 60 -1 1 1 1 1 1 3 -1 -1
`

func TestParseSWFBasics(t *testing.T) {
	specs, recs, err := ParseSWF(strings.NewReader(sampleSWF), SWFOptions{K: 2, TimeScale: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Job 3 has run time −1 → skipped; 3 usable records remain.
	if len(specs) != 3 || len(recs) != 3 {
		t.Fatalf("%d specs, %d records; want 3 each", len(specs), len(recs))
	}
	// Job 1: 120 s at scale 60 → 2 steps × 4 procs, release 0.
	if recs[0].JobID != 1 || recs[0].Procs != 4 {
		t.Errorf("rec0 = %+v", recs[0])
	}
	if specs[0].Release != 0 || specs[0].Source.Span() != 2 {
		t.Errorf("spec0 release %d span %d", specs[0].Release, specs[0].Source.Span())
	}
	wv := specs[0].Source.WorkVector()
	if wv[0]+wv[1] != 8 {
		t.Errorf("spec0 work %v, want total 8", wv)
	}
	// Job 2: release 60/60 = 1, span 10.
	if specs[1].Release != 1 || specs[1].Source.Span() != 10 {
		t.Errorf("spec1 release %d span %d", specs[1].Release, specs[1].Source.Span())
	}
	// Job 4: allocated −1 falls back to requested 2; 60 s → 1 step.
	if recs[2].Procs != 2 || specs[2].Source.Span() != 1 {
		t.Errorf("rec2 procs %d span %d", recs[2].Procs, specs[2].Source.Span())
	}
}

func TestParseSWFCategoryAssignment(t *testing.T) {
	byPartition := func(rec SWFRecord, _ int) dag.Category {
		return dag.Category((rec.Partition-1)%3 + 1)
	}
	specs, recs, err := ParseSWF(strings.NewReader(sampleSWF), SWFOptions{
		K: 3, TimeScale: 60, Category: byPartition,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		wantCat := (recs[i].Partition-1)%3 + 1
		wv := s.Source.WorkVector()
		for a := range wv {
			if a+1 == wantCat && wv[a] == 0 {
				t.Errorf("job %d: no work in partition category %d", i, wantCat)
			}
			if a+1 != wantCat && wv[a] != 0 {
				t.Errorf("job %d: unexpected work in category %d", i, a+1)
			}
		}
	}
}

func TestParseSWFOptionsValidation(t *testing.T) {
	if _, _, err := ParseSWF(strings.NewReader(sampleSWF), SWFOptions{K: 0, TimeScale: 1}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, _, err := ParseSWF(strings.NewReader(sampleSWF), SWFOptions{K: 1, TimeScale: 0}); err == nil {
		t.Error("TimeScale=0 accepted")
	}
	if _, _, err := ParseSWF(strings.NewReader("1 2 3"), SWFOptions{K: 1, TimeScale: 1}); err == nil {
		t.Error("short line accepted")
	}
	if _, _, err := ParseSWF(strings.NewReader("a b c d e f g h i j k l m n o p q r"), SWFOptions{K: 1, TimeScale: 1}); err == nil {
		t.Error("non-numeric accepted")
	}
	if _, _, err := ParseSWF(strings.NewReader("; only comments\n"), SWFOptions{K: 1, TimeScale: 1}); err == nil {
		t.Error("empty log accepted")
	}
}

func TestParseSWFMaxJobsAndMaxProcs(t *testing.T) {
	specs, recs, err := ParseSWF(strings.NewReader(sampleSWF), SWFOptions{
		K: 1, TimeScale: 60, MaxJobs: 1, MaxProcs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("MaxJobs ignored: %d specs", len(specs))
	}
	if recs[0].Procs != 2 {
		t.Errorf("MaxProcs ignored: %d", recs[0].Procs)
	}
}

func TestSyntheticSWFRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteSyntheticSWF(&b, 40, 7); err != nil {
		t.Fatal(err)
	}
	specs, recs, err := ParseSWF(strings.NewReader(b.String()), SWFOptions{K: 3, TimeScale: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 40 || len(recs) != 40 {
		t.Fatalf("round trip lost jobs: %d/%d", len(specs), len(recs))
	}
	var prev int64 = -1
	for i, s := range specs {
		if s.Release < prev {
			t.Fatalf("job %d release %d < previous %d", i, s.Release, prev)
		}
		prev = s.Release
		if s.Source.TotalTasks() < 1 {
			t.Fatalf("job %d empty", i)
		}
	}
	if err := WriteSyntheticSWF(&b, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}
