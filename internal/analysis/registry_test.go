package analysis

import (
	"testing"
)

func TestNewSchedulerKnownNames(t *testing.T) {
	for _, name := range SchedulerNames() {
		s, err := NewScheduler(name, 2)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("%s: empty Name()", name)
		}
	}
}

func TestNewSchedulerUnknown(t *testing.T) {
	if _, err := NewScheduler("nope", 2); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSchedulerNamesSortedAndComplete(t *testing.T) {
	names := SchedulerNames()
	if len(names) < 8 {
		t.Errorf("only %d schedulers registered: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
	want := map[string]bool{"k-rad": true, "laps": true, "gang": true, "sjf-oracle": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing schedulers: %v", want)
	}
}
