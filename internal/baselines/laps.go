package baselines

import (
	"math"

	"krad/internal/sched"
)

// laps is LAPS(β) — Latest Arrival Processor Sharing (Edmonds & Pruhs):
// each category's processors are shared equally among the ⌈β·nα⌉ most
// recently arrived α-active jobs, the rest receive nothing. β = 1 recovers
// EQUI. LAPS is the canonical speed-augmentation-analyzed scheduler for
// non-clairvoyant response time; here it serves as a literature baseline
// against RAD's DEQ+RR combination. Like EQUI it ignores desires, so
// shares beyond a job's parallelism are wasted.
type laps struct {
	beta float64
}

// NewLAPS returns the LAPS(β) scheduler for k categories. beta must lie in
// (0, 1].
func NewLAPS(k int, beta float64) *sched.PerCategory {
	if beta <= 0 || beta > 1 {
		panic("baselines: LAPS beta must be in (0, 1]")
	}
	cats := make([]sched.CategoryScheduler, k)
	for i := range cats {
		cats[i] = laps{beta: beta}
	}
	return sched.NewPerCategory("laps", cats)
}

func (l laps) Name() string { return "laps" }

func (l laps) Allot(t int64, jobs []sched.CatJob, p int) []int {
	allot := make([]int, len(jobs))
	n := len(jobs)
	if n == 0 || p <= 0 {
		return allot
	}
	m := int(math.Ceil(l.beta * float64(n)))
	if m < 1 {
		m = 1
	}
	// jobs arrive ID-ordered; the m latest are the last m entries.
	share, extra := p/m, p%m
	start := int(t) % m
	if start < 0 {
		start += m
	}
	for i := 0; i < m; i++ {
		a := share
		if extra > 0 && (i-start+m)%m < extra {
			a++
		}
		allot[n-m+i] = a
	}
	return allot
}

var _ sched.CategoryScheduler = laps{}
