package dag

import "fmt"

// This file adds the classic parallel-computing DAG families beyond the
// basic builders in build.go, each with an exactly known work and span so
// tests can pin the formulas: reduction trees, butterflies (FFT-style),
// time-stepped stencils, and recursive divide-and-conquer.

// BinaryReduction builds a leaves-to-root binary reduction tree: `leaves`
// input tasks of category leafCat combined pairwise by tasks of category
// nodeCat. leaves must be ≥ 1. Work = 2·leaves − 1 tasks; span =
// ⌈log2(leaves)⌉ + 1.
func BinaryReduction(k, leaves int, leafCat, nodeCat Category) *Graph {
	if leaves < 1 {
		panic("dag: BinaryReduction needs ≥ 1 leaf")
	}
	g := New(k).Named(fmt.Sprintf("reduce-%d", leaves))
	level := g.AddTasks(leafCat, leaves)
	for len(level) > 1 {
		next := make([]TaskID, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				// Odd element passes through to the next level via a
				// combiner with a single input.
				n := g.AddTask(nodeCat)
				g.MustEdge(level[i], n)
				next = append(next, n)
				break
			}
			n := g.AddTask(nodeCat)
			g.MustEdge(level[i], n)
			g.MustEdge(level[i+1], n)
			next = append(next, n)
		}
		level = next
	}
	return g
}

// Butterfly builds the FFT-style butterfly network on 2^logN inputs:
// logN+1 ranks of 2^logN tasks, where the task at (rank r+1, position p)
// depends on (r, p) and (r, p XOR 2^r). catAt(rank) colors each rank.
// Work = (logN+1)·2^logN; span = logN + 1.
func Butterfly(k, logN int, catAt func(rank int) Category) *Graph {
	if logN < 0 || logN > 24 {
		panic(fmt.Sprintf("dag: Butterfly logN=%d out of [0,24]", logN))
	}
	n := 1 << logN
	g := New(k).Named(fmt.Sprintf("butterfly-%d", n))
	prev := g.AddTasks(catAt(0), n)
	for r := 0; r < logN; r++ {
		cur := g.AddTasks(catAt(r+1), n)
		for p := 0; p < n; p++ {
			g.MustEdge(prev[p], cur[p])
			g.MustEdge(prev[p^(1<<r)], cur[p])
		}
		prev = cur
	}
	return g
}

// Stencil2D builds a time-stepped 1D-domain stencil (a 2D dependence
// grid): steps × width compute tasks of category compCat where cell
// (s, w) depends on (s−1, w−1), (s−1, w), (s−1, w+1); every haloPeriod
// steps each boundary cell additionally produces an exchange task of
// category haloCat that the next step's boundary consumes. Models the
// compute/communicate alternation of iterative solvers. Work =
// steps·width compute tasks (+ halos); span = steps (+ the halo chain
// inserts, one per period at each boundary).
func Stencil2D(k, steps, width, haloPeriod int, compCat, haloCat Category) *Graph {
	if steps < 1 || width < 1 {
		panic("dag: Stencil2D needs steps ≥ 1 and width ≥ 1")
	}
	if haloPeriod < 1 {
		haloPeriod = steps + 1 // never
	}
	g := New(k).Named(fmt.Sprintf("stencil-%dx%d", steps, width))
	prev := g.AddTasks(compCat, width)
	for s := 1; s < steps; s++ {
		cur := g.AddTasks(compCat, width)
		for w := 0; w < width; w++ {
			for _, dw := range []int{-1, 0, 1} {
				if w+dw >= 0 && w+dw < width {
					g.MustEdge(prev[w+dw], cur[w])
				}
			}
		}
		if s%haloPeriod == 0 {
			// Boundary exchange: halo tasks between the rows.
			for _, w := range []int{0, width - 1} {
				h := g.AddTask(haloCat)
				g.MustEdge(prev[w], h)
				g.MustEdge(h, cur[w])
				if width == 1 {
					break
				}
			}
		}
		prev = cur
	}
	return g
}

// DivideAndConquer builds a recursive fork-join skeleton of the given
// depth and branching factor: each internal node is a divide task
// (divCat), leaves are conquer tasks (leafCat), and results merge back up
// through combine tasks (combCat). Work = 2·(b^(d+1)−1)/(b−1) − b^d ... —
// exactly: internal divide nodes n_i = (b^d−1)/(b−1), leaves b^d, combine
// nodes mirror the divides. Span = 2d + 1.
func DivideAndConquer(k, depth, branch int, divCat, leafCat, combCat Category) *Graph {
	if depth < 0 || branch < 1 {
		panic("dag: DivideAndConquer needs depth ≥ 0 and branch ≥ 1")
	}
	g := New(k).Named(fmt.Sprintf("dnc-d%d-b%d", depth, branch))
	var build func(d int) (top, bottom TaskID)
	build = func(d int) (TaskID, TaskID) {
		if d == 0 {
			leaf := g.AddTask(leafCat)
			return leaf, leaf
		}
		div := g.AddTask(divCat)
		comb := g.AddTask(combCat)
		for i := 0; i < branch; i++ {
			top, bottom := build(d - 1)
			g.MustEdge(div, top)
			g.MustEdge(bottom, comb)
		}
		return div, comb
	}
	build(depth)
	return g
}
