package analysis

import (
	"fmt"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sim"
	"krad/internal/workload"
)

// runBatched generates a batched mix and schedules it with K-RAD.
func runBatched(k int, caps []int, mix workload.Mix) (*sim.Result, error) {
	specs, err := mix.Generate()
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Config{
		K: k, Caps: caps, Scheduler: core.NewKRAD(k),
		Pick: dag.PickFIFO, ValidateAllotments: true,
	}, specs)
}

// RunE5 validates Theorem 5: for batched job sets that stay in the light-
// workload regime (|J(α,t)| ≤ Pα throughout — guaranteed here by keeping
// the job count at or below every category's processor count), the total
// response time obeys Inequality (5) and the competitive ratio against the
// Section 6 lower bound stays below 2K + 1 − 2K/(n+1).
func RunE5(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "Mean response time under light workload (Theorem 5 / Inequality 5)",
		Header: []string{"K", "caps", "jobs", "light?", "R(J)", "R LB", "ratio", "bound 2K+1-2K/(n+1)", "ineq5 rhs", "ineq5"},
	}
	reps := 5
	if opts.Quick {
		reps = 2
	}
	type cfg struct {
		k    int
		caps []int
		n    int
	}
	sweep := []cfg{
		{1, []int{8}, 2}, {1, []int{8}, 8},
		{2, []int{8, 8}, 4}, {2, []int{8, 8}, 8},
		{3, []int{8, 8, 8}, 8}, {3, []int{16, 16, 16}, 12},
		{4, []int{8, 8, 8, 8}, 6},
	}
	for _, c := range sweep {
		var worst *sim.Result
		worstRatio := -1.0
		ineqOK := true
		allLight := true
		for rep := 0; rep < reps; rep++ {
			res, err := runBatched(c.k, c.caps, workload.Mix{
				K: c.k, Jobs: c.n, MinSize: 6, MaxSize: 60,
				Seed: opts.seed() + int64(rep)*77,
			})
			if err != nil {
				return nil, err
			}
			if res.EverOverloaded() {
				// Cannot happen with n ≤ min caps; would invalidate the row.
				allLight = false
			}
			bc, _ := CheckTheorem5(res)
			if bc.Measured > worstRatio {
				worstRatio = bc.Measured
				worst = res
			}
			if i5, applicable := CheckInequality5(res); applicable && !i5.OK {
				ineqOK = false
			}
		}
		bound := metrics.ResponseCompetitiveLimitLight(c.k, c.n)
		ineqCell := "holds"
		if !ineqOK {
			ineqCell = "VIOLATED"
		}
		t.AddRow(c.k, fmt.Sprint(c.caps), c.n, allLight,
			worst.TotalResponse(), metrics.ResponseLowerBound(worst), worstRatio, bound,
			metrics.ResponseUpperBoundLight(worst), ineqCell)
		if worstRatio > bound {
			t.AddNote("FAIL: K=%d n=%d ratio %.3f exceeds bound %.3f", c.k, c.n, worstRatio, bound)
		}
		if !ineqOK {
			t.AddNote("FAIL: K=%d n=%d Inequality (5) violated", c.k, c.n)
		}
		if !allLight {
			t.AddNote("FAIL: K=%d n=%d unexpectedly left the light-workload regime", c.k, c.n)
		}
	}
	t.AddNote("worst of %d seeded repetitions per row; expected shape: ratios well below the theorem bound (typically < 2)", reps)
	return t, nil
}

// RunE6 validates Theorem 6: for arbitrary batched sets — here heavily
// overloaded ones, many more jobs than processors in every category — the
// MRT competitive ratio stays below 4K + 1 − 4K/(n+1).
func RunE6(opts Options) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Mean response time under heavy workload (Theorem 6)",
		Header: []string{"K", "caps", "jobs", "overloaded?", "mean resp", "R(J)", "R LB", "ratio", "bound 4K+1-4K/(n+1)"},
	}
	reps := 3
	sizes := []int{50, 100, 200}
	if opts.Quick {
		reps = 2
		sizes = []int{30, 60}
	}
	type cfg struct {
		k    int
		caps []int
	}
	sweep := []cfg{
		{1, []int{2}},
		{2, []int{2, 2}},
		{3, []int{2, 4, 2}},
		{4, []int{2, 2, 2, 2}},
	}
	for _, c := range sweep {
		for _, n := range sizes {
			var worst *sim.Result
			worstRatio := -1.0
			sawOverload := false
			for rep := 0; rep < reps; rep++ {
				res, err := runBatched(c.k, c.caps, workload.Mix{
					K: c.k, Jobs: n, MinSize: 2, MaxSize: 30,
					Seed: opts.seed() + int64(rep)*131,
				})
				if err != nil {
					return nil, err
				}
				if res.EverOverloaded() {
					sawOverload = true
				}
				bc := CheckTheorem6(res)
				if bc.Measured > worstRatio {
					worstRatio = bc.Measured
					worst = res
				}
			}
			bound := metrics.ResponseCompetitiveLimit(c.k, n)
			t.AddRow(c.k, fmt.Sprint(c.caps), n, sawOverload,
				fmt.Sprintf("%.1f", worst.MeanResponse()),
				worst.TotalResponse(), metrics.ResponseLowerBound(worst), worstRatio, bound)
			if worstRatio > bound {
				t.AddNote("FAIL: K=%d n=%d ratio %.3f exceeds bound %.3f", c.k, n, worstRatio, bound)
			}
		}
	}
	t.AddNote("worst of %d seeded repetitions per row; expected shape: ratios below the 4K+1 bound, growing mildly with K", reps)
	return t, nil
}
