package sim_test

import (
	"testing"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/profile"
	"krad/internal/sim"
)

// TestEngineStepAllocsZero pins the engine's steady-state scheduling round
// at zero allocations: profile jobs mid-run, K-RAD, no tracing — the
// configuration long online simulations and the kradd service run in. Any
// regression here multiplies across millions of steps.
func TestEngineStepAllocsZero(t *testing.T) {
	const k = 3
	phases := []profile.Phase{{Tasks: []int{1 << 28, 1 << 28, 1 << 28}}}
	var specs []sim.JobSpec
	for j := 0; j < 16; j++ {
		specs = append(specs, sim.JobSpec{Source: profile.MustNew(k, "p", phases)})
	}
	eng, err := sim.NewEngine(sim.Config{
		K: k, Caps: []int{13, 7, 5}, Scheduler: core.NewKRAD(k),
		Pick: dag.PickFIFO, MaxSteps: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AdmitBatch(specs); err != nil {
		t.Fatal(err)
	}
	// Warm every reused buffer (views, desire backing, allot matrix, RAD
	// scratch) past its steady-state capacity.
	for i := 0; i < 8; i++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("steady-state Engine.Step allocates %.1f per call; want 0", avg)
	}
}

// dagAllocSpecs builds dense-layered barrier jobs wide enough that the
// alloc measurements below stay inside one level: no promotions, no
// completions, just the steady-state frontier drain.
func dagAllocSpecs(jobs, width int) []sim.JobSpec {
	specs := make([]sim.JobSpec, 0, jobs)
	for j := 0; j < jobs; j++ {
		g := dag.New(2)
		var join dag.TaskID
		for l := 0; l < 2; l++ {
			wide := g.AddTasks(dag.Category(1+(l+j)%2), width)
			if l > 0 {
				for _, v := range wide {
					g.MustEdge(join, v)
				}
			}
			join = g.AddTasks(dag.Category(1+(l+j+1)%2), 1)[0]
			for _, u := range wide {
				g.MustEdge(u, join)
			}
		}
		specs = append(specs, sim.JobSpec{Graph: g})
	}
	return specs
}

// TestDAGEngineStepAllocsZero pins the DAG single-step hot path — Desire,
// ExecuteCount (take), Advance — at zero steady-state allocations, the
// DAG analogue of TestEngineStepAllocsZero. kradd runs exactly this shape:
// graph jobs, K-RAD, no tracing.
func TestDAGEngineStepAllocsZero(t *testing.T) {
	eng, err := sim.NewEngine(sim.Config{
		K: 2, Caps: []int{8, 8}, Scheduler: core.NewKRAD(2),
		Pick: dag.PickFIFO, MaxSteps: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AdmitBatch(dagAllocSpecs(4, 8192)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("steady-state DAG Engine.Step allocates %.1f per call; want 0", avg)
	}
}

// TestDAGEngineStepNLeapAllocsZero pins the DAG event-leap round — the
// StableFor frontier scan, the closed-form LeapTotals, ExecuteLeap's bulk
// take and the single deferred Advance — at zero steady-state allocations.
func TestDAGEngineStepNLeapAllocsZero(t *testing.T) {
	eng, err := sim.NewEngine(sim.Config{
		K: 2, Caps: []int{8, 8}, Scheduler: core.NewKRAD(2),
		Pick: dag.PickFIFO, MaxSteps: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AdmitBatch(dagAllocSpecs(4, 1<<15)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := eng.StepN(64); err != nil {
			t.Fatal(err)
		}
	}
	var leaps int64
	if avg := testing.AllocsPerRun(100, func() {
		info, err := eng.StepN(64)
		if err != nil {
			t.Fatal(err)
		}
		leaps += info.LeapSteps
	}); avg != 0 {
		t.Fatalf("steady-state DAG Engine.StepN allocates %.1f per call; want 0", avg)
	}
	if leaps == 0 {
		t.Fatal("StepN(64) rounds never leaped on the dense-layered DAG; the test is not exercising the leap path")
	}
}

// TestEngineStepNLeapAllocsZero pins the event-leap round itself at zero
// steady-state allocations: each StepN call below covers many steps via
// LeapTotals, and must not allocate while doing so.
func TestEngineStepNLeapAllocsZero(t *testing.T) {
	const k = 2
	phases := []profile.Phase{{Tasks: []int{1 << 29, 1 << 29}}}
	var specs []sim.JobSpec
	for j := 0; j < 9; j++ {
		specs = append(specs, sim.JobSpec{Source: profile.MustNew(k, "p", phases)})
	}
	eng, err := sim.NewEngine(sim.Config{
		K: k, Caps: []int{16, 11}, Scheduler: core.NewKRAD(k),
		Pick: dag.PickFIFO, MaxSteps: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AdmitBatch(specs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := eng.StepN(64); err != nil {
			t.Fatal(err)
		}
	}
	var leaps int64
	if avg := testing.AllocsPerRun(100, func() {
		info, err := eng.StepN(64)
		if err != nil {
			t.Fatal(err)
		}
		leaps += info.LeapSteps
	}); avg != 0 {
		t.Fatalf("steady-state Engine.StepN allocates %.1f per call; want 0", avg)
	}
	if leaps == 0 {
		t.Fatal("StepN(64) rounds never leaped; the test is not exercising the leap path")
	}
}
