package dag

import (
	"testing"
	"testing/quick"
)

func TestBinaryReductionFormulas(t *testing.T) {
	cases := []struct {
		leaves     int
		span       int
		totalTasks int
	}{
		{1, 1, 1},
		{2, 2, 3},
		{4, 3, 7},
		{8, 4, 15},
		{16, 5, 31},
		{5, 4, 5 + 3 + 2 + 1}, // odd sizes pass odd elements through
	}
	for _, c := range cases {
		g := BinaryReduction(2, c.leaves, 1, 2)
		if err := g.Validate(); err != nil {
			t.Fatalf("leaves=%d: %v", c.leaves, err)
		}
		if g.Span() != c.span {
			t.Errorf("leaves=%d: span %d, want %d", c.leaves, g.Span(), c.span)
		}
		if g.NumTasks() != c.totalTasks {
			t.Errorf("leaves=%d: tasks %d, want %d", c.leaves, g.NumTasks(), c.totalTasks)
		}
		if len(g.Sinks()) != 1 {
			t.Errorf("leaves=%d: %d roots, want 1", c.leaves, len(g.Sinks()))
		}
	}
}

func TestButterflyFormulas(t *testing.T) {
	for logN := 0; logN <= 5; logN++ {
		g := Butterfly(2, logN, func(r int) Category { return Category(r%2 + 1) })
		if err := g.Validate(); err != nil {
			t.Fatalf("logN=%d: %v", logN, err)
		}
		n := 1 << logN
		if g.NumTasks() != (logN+1)*n {
			t.Errorf("logN=%d: tasks %d, want %d", logN, g.NumTasks(), (logN+1)*n)
		}
		if g.Span() != logN+1 {
			t.Errorf("logN=%d: span %d, want %d", logN, g.Span(), logN+1)
		}
		// Each non-input rank task has exactly 2 predecessors (1 when the
		// partner equals itself, impossible for logN ≥ 1).
		if logN >= 1 {
			if g.NumEdges() != 2*logN*n {
				t.Errorf("logN=%d: edges %d, want %d", logN, g.NumEdges(), 2*logN*n)
			}
		}
	}
}

func TestStencil2DShape(t *testing.T) {
	g := Stencil2D(3, 6, 5, 2, 1, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 6×5 compute tasks plus halo tasks at steps 2 and 4 (two each).
	if got := g.Work(1); got != 30 {
		t.Errorf("compute work %d, want 30", got)
	}
	if got := g.Work(2); got != 4 {
		t.Errorf("halo work %d, want 4", got)
	}
	// Halo chains insert one extra level at each exchange step.
	if g.Span() != 6+2 {
		t.Errorf("span %d, want 8", g.Span())
	}
}

func TestStencil2DNoHalo(t *testing.T) {
	g := Stencil2D(2, 4, 3, 0, 1, 2) // haloPeriod 0 → never
	if g.Work(2) != 0 {
		t.Errorf("unexpected halo tasks: %d", g.Work(2))
	}
	if g.Span() != 4 {
		t.Errorf("span %d, want 4", g.Span())
	}
}

func TestDivideAndConquerFormulas(t *testing.T) {
	for _, c := range []struct {
		depth, branch int
	}{{0, 2}, {1, 2}, {2, 2}, {3, 2}, {2, 3}, {1, 4}} {
		g := DivideAndConquer(3, c.depth, c.branch, 1, 2, 3)
		if err := g.Validate(); err != nil {
			t.Fatalf("d=%d b=%d: %v", c.depth, c.branch, err)
		}
		wantSpan := 2*c.depth + 1
		if g.Span() != wantSpan {
			t.Errorf("d=%d b=%d: span %d, want %d", c.depth, c.branch, g.Span(), wantSpan)
		}
		// Leaves = branch^depth; internal divide = combine counts.
		leaves := 1
		for i := 0; i < c.depth; i++ {
			leaves *= c.branch
		}
		if got := g.Work(2); got != leaves {
			t.Errorf("d=%d b=%d: leaves %d, want %d", c.depth, c.branch, got, leaves)
		}
		if g.Work(1) != g.Work(3) {
			t.Errorf("d=%d b=%d: divide %d != combine %d", c.depth, c.branch, g.Work(1), g.Work(3))
		}
	}
}

func TestFamilyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"reduce-0":   func() { BinaryReduction(1, 0, 1, 1) },
		"butterfly":  func() { Butterfly(1, -1, func(int) Category { return 1 }) },
		"stencil":    func() { Stencil2D(1, 0, 1, 1, 1, 1) },
		"dnc-depth":  func() { DivideAndConquer(1, -1, 2, 1, 1, 1) },
		"dnc-branch": func() { DivideAndConquer(1, 2, 0, 1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuickFamiliesScheduleToSpanUnconstrained(t *testing.T) {
	f := func(sel, p1, p2 uint8) bool {
		var g *Graph
		switch sel % 4 {
		case 0:
			g = BinaryReduction(2, 1+int(p1)%32, 1, 2)
		case 1:
			g = Butterfly(2, int(p1)%5, func(r int) Category { return Category(r%2 + 1) })
		case 2:
			g = Stencil2D(2, 1+int(p1)%8, 1+int(p2)%8, 2, 1, 2)
		case 3:
			g = DivideAndConquer(2, int(p1)%4, 1+int(p2)%3, 1, 2, 1)
		}
		if g.Validate() != nil {
			return false
		}
		in := NewInstance(g, PickFIFO, 0)
		steps := 0
		for !in.Done() {
			steps++
			if steps > g.NumTasks()+1 {
				return false
			}
			for c := 1; c <= 2; c++ {
				in.Execute(Category(c), g.NumTasks())
			}
			in.Advance()
		}
		return steps == g.Span()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
