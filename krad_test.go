package krad_test

import (
	"testing"

	"krad"
)

// TestQuickstartFlow exercises the documented facade end to end: build a
// K-DAG by hand, schedule it with K-RAD, and check the paper's bounds.
func TestQuickstartFlow(t *testing.T) {
	job := krad.NewGraph(2).Named("etl")
	read := job.AddTask(2)    // I/O: read input
	decode := job.AddTask(1)  // CPU: decode
	crunchA := job.AddTask(1) // CPU: parallel crunch
	crunchB := job.AddTask(1)
	write := job.AddTask(2) // I/O: write output
	job.MustEdge(read, decode)
	job.MustEdge(decode, crunchA)
	job.MustEdge(decode, crunchB)
	job.MustEdge(crunchA, write)
	job.MustEdge(crunchB, write)
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}

	res, err := krad.Run(krad.Config{
		K:                  2,
		Caps:               []int{4, 2},
		Scheduler:          krad.NewKRAD(2),
		Pick:               krad.PickFIFO,
		Trace:              krad.TraceTasks,
		ValidateAllotments: true,
	}, []krad.JobSpec{{Graph: job}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 4 { // span: read → decode → crunch×2 → write
		t.Errorf("makespan %d, want 4", res.Makespan)
	}
	if err := krad.ValidateSchedule([]krad.JobSpec{{Graph: job}}, res); err != nil {
		t.Error(err)
	}
	if failures := krad.CheckAll(res); len(failures) != 0 {
		t.Errorf("bound failures: %v", failures)
	}
}

// TestFacadeSchedulersInterop runs every exported scheduler through the
// engine on the same workload.
func TestFacadeSchedulersInterop(t *testing.T) {
	specs, err := krad.Mix{K: 2, Jobs: 12, MinSize: 3, MaxSize: 25, Seed: 2}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []krad.Scheduler{
		krad.NewKRAD(2), krad.NewDEQOnly(2), krad.NewRROnly(2),
		krad.NewEQUI(2), krad.NewFCFS(2), krad.NewGreedyDesire(2), krad.NewSJF(),
	} {
		res, err := krad.Run(krad.Config{
			K: 2, Caps: []int{3, 3}, Scheduler: s, ValidateAllotments: true,
		}, specs)
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
			continue
		}
		if bc := krad.CheckTheorem3(res); res.Makespan < krad.MakespanLowerBound(res) {
			t.Errorf("%s: makespan below lower bound (%v)", s.Name(), bc)
		}
	}
}

// TestAdversarialFacade reproduces the Theorem 1 shape through the facade.
func TestAdversarialFacade(t *testing.T) {
	adv, err := krad.NewAdversarial(3, 4, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func(bigLast bool, pick krad.PickPolicy) int64 {
		jobs := adv.JobSet(bigLast)
		specs := make([]krad.JobSpec, len(jobs))
		for i, g := range jobs {
			specs[i] = krad.JobSpec{Graph: g}
		}
		res, err := krad.Run(krad.Config{
			K: 3, Caps: []int{2, 2, 2}, Scheduler: krad.NewKRAD(3), Pick: pick,
		}, specs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	tAdv := run(true, krad.PickCPLast)
	tGood := run(false, krad.PickCPFirst)
	if tGood != int64(adv.OptimalMakespan()) {
		t.Errorf("benign makespan %d, want closed-form %d", tGood, adv.OptimalMakespan())
	}
	if tAdv != int64(adv.WorstCaseMakespan()) {
		t.Errorf("adversarial makespan %d, want paper's %d", tAdv, adv.WorstCaseMakespan())
	}
	ratio := float64(tAdv) / float64(tGood)
	if ratio > adv.LimitRatio() {
		t.Errorf("ratio %.3f exceeds limit %.3f", ratio, adv.LimitRatio())
	}
	if ratio < 2.0 {
		t.Errorf("ratio %.3f suspiciously low for K=3, m=4", ratio)
	}
}

// TestExperimentSuiteThroughFacade smoke-runs the registry via the facade.
func TestExperimentSuiteThroughFacade(t *testing.T) {
	if len(krad.Experiments()) != 21 {
		t.Fatalf("%d experiments, want 21", len(krad.Experiments()))
	}
	e, err := krad.FindExperiment("E1")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Run(krad.ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Render() == "" || tbl.Markdown() == "" {
		t.Error("empty rendering")
	}
}
