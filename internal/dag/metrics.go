package dag

// Work returns the α-work T1(Ji, α): the number of tasks of category c.
func (g *Graph) Work(c Category) int {
	n := 0
	for _, cat := range g.cats {
		if cat == c {
			n++
		}
	}
	return n
}

// WorkVector returns T1(Ji, α) for every α as a slice indexed by α−1.
func (g *Graph) WorkVector() []int {
	w := make([]int, g.k)
	for _, cat := range g.cats {
		w[cat-1]++
	}
	return w
}

// TotalWork returns T1(Ji) = Σα T1(Ji, α), which equals the vertex count
// because every task belongs to exactly one category.
func (g *Graph) TotalWork() int { return g.NumTasks() }

// Span returns T∞(Ji): the number of vertices on the longest precedence
// chain. The empty graph has span 0. Span panics on cyclic graphs; call
// Validate first for untrusted data. Uses the memoized task heights, so
// repeated calls (one per job admission) cost one allocation-free scan.
func (g *Graph) Span() int {
	h, err := g.heights()
	if err != nil {
		panic(err)
	}
	best := int32(0)
	for _, v := range h {
		if v > best {
			best = v
		}
	}
	return int(best)
}

// CriticalPath returns one longest chain of tasks (ties broken toward
// smaller IDs) whose length equals Span. Returns nil for the empty graph.
func (g *Graph) CriticalPath() []TaskID {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	if len(order) == 0 {
		return nil
	}
	h, err := g.heights()
	if err != nil {
		panic(err)
	}
	// Start from the source with the greatest height, then repeatedly step
	// to the successor with the greatest height.
	var start TaskID = -1
	for id := 0; id < g.NumTasks(); id++ {
		if len(g.pred[id]) == 0 && (start < 0 || h[id] > h[start]) {
			start = TaskID(id)
		}
	}
	path := []TaskID{start}
	cur := start
	for len(g.succ[cur]) > 0 {
		next := TaskID(-1)
		for _, v := range g.succ[cur] {
			if next < 0 || h[v] > h[next] {
				next = v
			}
		}
		if h[next] != h[cur]-1 {
			// cur is the end of the longest chain even though it has
			// successors shorter than the remaining budget.
			break
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// Profile returns the parallelism profile of the job under the greedy
// infinite-processor schedule: element t is a per-category count (indexed
// by α−1) of tasks executing at step t+1 when every ready task runs
// immediately. The profile has exactly Span rows and its column sums equal
// WorkVector.
func (g *Graph) Profile() [][]int {
	levels, err := g.Levels()
	if err != nil {
		panic(err)
	}
	prof := make([][]int, len(levels))
	for t, level := range levels {
		row := make([]int, g.k)
		for _, id := range level {
			row[g.cats[id]-1]++
		}
		prof[t] = row
	}
	return prof
}

// MaxParallelism returns, per category (indexed α−1), the maximum
// instantaneous parallelism over the infinite-processor profile.
func (g *Graph) MaxParallelism() []int {
	m := make([]int, g.k)
	for _, row := range g.Profile() {
		for a, v := range row {
			if v > m[a] {
				m[a] = v
			}
		}
	}
	return m
}
