// Command kradbench runs the reproduction experiment suite (E1–E10 from
// DESIGN.md) and prints each experiment's table. With -markdown it emits
// the EXPERIMENTS.md body; with -run it restricts to a comma-separated set
// of experiment IDs.
//
// Usage:
//
//	kradbench [-run E3,E4] [-quick] [-seed N] [-markdown] [-o file]
//	kradbench -json bench.json [-note "post-PR4"]
//	kradbench -compare BENCH_PR7.json -with bench.json [-tol 0.40]
//
// With -json the experiment suite is skipped: the scheduling
// micro-benchmarks (the same workloads as `go test -bench`) run under
// testing.Benchmark and a machine-readable report is written to the given
// path ("-" for stdout). BENCH_PR4.json in the repo root records the
// pre-optimization baseline in this format.
//
// With -compare (paired with -with) two such reports are diffed and the
// command exits non-zero on a regression beyond the noise tolerance — the
// CI bench-regression gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"krad/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kradbench: ")
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick    = flag.Bool("quick", false, "use the reduced test-scale sweeps")
		seed     = flag.Int64("seed", 1, "workload seed")
		markdown = flag.Bool("markdown", false, "emit markdown instead of plain text")
		outPath  = flag.String("o", "", "write output to file instead of stdout")
		jsonPath = flag.String("json", "", "run the scheduling micro-benchmarks and write a JSON report to this path (\"-\" for stdout), skipping the experiment suite")
		note     = flag.String("note", "", "free-form note embedded in the -json report header")
		family   = flag.String("family", "", "restrict the -json engine benchmarks to one runtime family: profile, dag, moldable, mixed (empty = all)")
		compare  = flag.String("compare", "", "baseline -json report to compare against (requires -with); exits non-zero on regression")
		with     = flag.String("with", "", "candidate -json report for -compare")
		tol      = flag.Float64("tol", 0.40, "fractional ns/op regression tolerance for -compare")
		allocTol = flag.Float64("alloc-tol", 0.10, "fractional allocs/op regression tolerance for -compare")
	)
	flag.Parse()

	if *compare != "" || *with != "" {
		if *compare == "" || *with == "" {
			log.Fatal("-compare and -with must be given together")
		}
		regressions, err := compareReports(*compare, *with, *tol, *allocTol)
		if err != nil {
			log.Fatal(err)
		}
		if regressions > 0 {
			log.Fatalf("%d benchmark regression(s) beyond tolerance", regressions)
		}
		return
	}

	if *jsonPath != "" {
		if err := runJSONBenchmarks(*jsonPath, *note, *family); err != nil {
			log.Fatal(err)
		}
		return
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		out = f
	}

	experiments := analysis.All()
	if *runIDs != "" {
		var selected []analysis.Experiment
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := analysis.Find(strings.TrimSpace(id))
			if err != nil {
				log.Fatal(err)
			}
			selected = append(selected, e)
		}
		experiments = selected
	}

	opts := analysis.Options{Quick: *quick, Seed: *seed}
	failures := 0
	for _, e := range experiments {
		start := time.Now()
		tbl, err := e.Run(opts)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if *markdown {
			fmt.Fprintf(out, "%s\n*source: %s; generated in %s*\n\n", tbl.Markdown(), e.Source, elapsed)
		} else {
			fmt.Fprintf(out, "%s(source: %s; generated in %s)\n\n", tbl.Render(), e.Source, elapsed)
		}
		for _, n := range tbl.Notes {
			if strings.Contains(n, "FAIL") || strings.Contains(n, "UNEXPECTED") {
				failures++
				log.Printf("%s: %s", e.ID, n)
			}
		}
	}
	if failures > 0 {
		log.Fatalf("%d bound violations — the reproduction does NOT match the paper", failures)
	}
}
