package core

import (
	"testing"

	"krad/internal/sched"
)

func catJobs(desires ...int) []sched.CatJob {
	jobs := make([]sched.CatJob, len(desires))
	for i, d := range desires {
		jobs[i] = sched.CatJob{ID: i, Desire: d}
	}
	return jobs
}

func TestRADLightLoadIsDEQ(t *testing.T) {
	r := NewRAD()
	jobs := catJobs(1, 9, 9)
	got := r.Allot(1, jobs, 9)
	if got[0] != 1 || got[1]+got[2] != 8 {
		t.Errorf("light-load allot = %v", got)
	}
}

func TestRADEmpty(t *testing.T) {
	r := NewRAD()
	if got := r.Allot(1, nil, 4); len(got) != 0 {
		t.Errorf("empty allot = %v", got)
	}
	got := r.Allot(1, catJobs(3, 3), 0)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("p=0 allot = %v", got)
	}
}

func TestRADOverloadRunsRoundRobinCycle(t *testing.T) {
	// 5 jobs, 2 processors: the cycle needs ⌈5/2⌉ = 3 steps; every job
	// must be scheduled exactly once before any job is scheduled twice.
	r := NewRAD()
	jobs := catJobs(4, 4, 4, 4, 4)
	scheduledAt := make(map[int]int64)

	for step := int64(1); step <= 2; step++ {
		got := r.Allot(step, jobs, 2)
		count := 0
		for i, a := range got {
			if a > 0 {
				if a != 1 {
					t.Fatalf("step %d: RR gave job %d allotment %d", step, i, a)
				}
				if _, dup := scheduledAt[i]; dup {
					t.Fatalf("step %d: job %d scheduled twice within cycle", step, i)
				}
				scheduledAt[i] = step
				count++
			}
		}
		if count != 2 {
			t.Fatalf("step %d: scheduled %d jobs, want 2", step, count)
		}
	}
	// Step 3 completes the cycle: the 1 unmarked job plus 1 marked job
	// moved over, partitioned by DEQ.
	got := r.Allot(3, jobs, 2)
	total := 0
	unmarkedServed := false
	for i, a := range got {
		total += a
		if _, seen := scheduledAt[i]; !seen && a > 0 {
			unmarkedServed = true
		}
	}
	if !unmarkedServed {
		t.Error("cycle-completing step skipped the remaining unmarked job")
	}
	if total != 2 {
		t.Errorf("cycle-completing step allotted %d processors, want 2", total)
	}

	// After the cycle all marks are cleared: the next step starts a fresh
	// cycle over all 5 jobs again.
	got = r.Allot(4, jobs, 2)
	count := 0
	for i, a := range got {
		if a > 0 {
			if i >= 2 {
				t.Errorf("fresh cycle did not start from the queue head: job %d served", i)
			}
			count++
		}
	}
	if count != 2 {
		t.Errorf("fresh cycle scheduled %d jobs", count)
	}
}

func TestRADRoundRobinNoStarvation(t *testing.T) {
	// Under sustained overload, RAD's guarantee is per-cycle service:
	// every α-active job is scheduled at least once per round-robin cycle
	// and at most twice (its RR turn plus possibly one cycle-completing
	// bonus). With 7 jobs on 3 processors a cycle is 3 steps, so over
	// 63 steps (21 cycles) every job gets between 21 and 42 services —
	// and the bonus rotation keeps the jobs that are eligible for bonuses
	// within one of each other.
	r := NewRAD()
	jobs := catJobs(2, 2, 2, 2, 2, 2, 2)
	served := make([]int, len(jobs))
	const cycles = 21
	for step := int64(1); step <= 3*cycles; step++ {
		got := r.Allot(step, jobs, 3)
		total := 0
		for i, a := range got {
			served[i] += a
			total += a
		}
		if total != 3 {
			t.Fatalf("step %d: used %d of 3 processors under overload", step, total)
		}
	}
	for i, s := range served {
		if s < cycles {
			t.Errorf("job %d starved: served %d times in %d cycles", i, s, cycles)
		}
		if s > 2*cycles {
			t.Errorf("job %d over-served: %d times in %d cycles", i, s, cycles)
		}
	}
	// Jobs 0..5 share the bonus pool evenly thanks to rotation.
	min, max := served[0], served[0]
	for _, s := range served[:6] {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Errorf("bonus rotation uneven among eligible jobs: %v", served)
	}
}

func TestRADJobsDoneClearsMarks(t *testing.T) {
	r := NewRAD()
	jobs := catJobs(1, 1, 1)
	r.Allot(1, jobs, 2) // marks jobs 0, 1
	r.JobsDone([]int{0, 1})
	for id := range jobs {
		if r.marked(id) {
			t.Errorf("job %d still marked after JobsDone", id)
		}
	}
}

func TestKRADComposesPerCategory(t *testing.T) {
	k := 3
	s := NewKRAD(k)
	if s.Name() != "k-rad" {
		t.Errorf("Name = %q", s.Name())
	}
	jobs := []sched.JobView{
		{ID: 0, Desire: []int{2, 0, 5}},
		{ID: 1, Desire: []int{0, 3, 5}},
		{ID: 2, Desire: []int{1, 1, 0}},
	}
	caps := []int{4, 4, 4}
	allot := s.Allot(1, jobs, caps)
	if err := sched.ValidateAllotments(jobs, caps, allot); err != nil {
		t.Fatal(err)
	}
	// Light load everywhere: category 1 and 2 fully satisfied.
	if allot[0][0] != 2 || allot[2][0] != 1 {
		t.Errorf("category 1 allot: %v", allot)
	}
	if allot[1][1] != 3 || allot[2][1] != 1 {
		t.Errorf("category 2 allot: %v", allot)
	}
	// Category 3: two jobs wanting 5 each on 4 processors → 2/2.
	if allot[0][2]+allot[1][2] != 4 {
		t.Errorf("category 3 allot: %v", allot)
	}
	if allot[2][2] != 0 {
		t.Errorf("job 2 allotted category 3 it does not desire: %v", allot)
	}
	// A job never receives processors of a category it has no desire for.
	if allot[0][1] != 0 || allot[1][0] != 0 {
		t.Errorf("allotment to zero-desire category: %v", allot)
	}
}

func TestKRADCategoriesAreIndependent(t *testing.T) {
	// Overload in category 1 must not push category 2 into round-robin.
	s := NewKRAD(2)
	jobs := make([]sched.JobView, 6)
	for i := range jobs {
		jobs[i] = sched.JobView{ID: i, Desire: []int{1, 0}}
	}
	jobs[0].Desire = []int{1, 8} // the only category-2 consumer
	caps := []int{2, 4}
	allot := s.Allot(1, jobs, caps)
	if allot[0][1] != 4 {
		t.Errorf("category 2 should DEQ-satisfy the single job with all 4: %v", allot)
	}
	sum1 := 0
	for _, row := range allot {
		sum1 += row[0]
	}
	if sum1 != 2 {
		t.Errorf("category 1 RR should use both processors, got %d", sum1)
	}
}
