package main

import (
	"fmt"
	"math/rand"
	"strconv"
)

// placementKeyHeader routes a submission to a shard under kradd's "hash"
// placement policy (the client-side spelling of the server's
// X-Krad-Placement-Key header).
const placementKeyHeader = "X-Krad-Placement-Key"

// newKeyGen builds the -skew placement-key generator, or nil when skew is
// off (submissions then carry no placement key, exactly as before the
// flag existed). The generator is deterministic for a given seed — the
// distribution tests pin it — and is called from the single feed
// goroutine, so it needs no locking.
//
//	zipf  keys key-0..key-<n-1> with Zipf(s=1.2) frequencies: key-0 is
//	      the hot key, the tail falls off polynomially — the skewed
//	      arrival stream that concentrates load on whichever shard
//	      key-0 hashes to.
//	hot   90% of batches carry key-hot, the rest spread uniformly over
//	      key-0..key-<n-1>: one saturated shard, everyone else nearly
//	      idle.
func newKeyGen(skew string, seed int64, nkeys int) (func() string, error) {
	if nkeys < 2 {
		nkeys = 2
	}
	switch skew {
	case "", "none":
		return nil, nil
	case "zipf":
		rng := rand.New(rand.NewSource(seed))
		z := rand.NewZipf(rng, 1.2, 1, uint64(nkeys-1))
		return func() string {
			return "key-" + strconv.FormatUint(z.Uint64(), 10)
		}, nil
	case "hot":
		rng := rand.New(rand.NewSource(seed))
		return func() string {
			if rng.Float64() < 0.9 {
				return "key-hot"
			}
			return "key-" + strconv.Itoa(rng.Intn(nkeys))
		}, nil
	default:
		return nil, fmt.Errorf("kradreplay: unknown -skew %q (want zipf, hot or none)", skew)
	}
}
