package journal

import (
	"encoding/json"
	"fmt"

	"krad/internal/dag"
	"krad/internal/fairshare"
	"krad/internal/moldable"
	"krad/internal/profile"
	"krad/internal/sim"
)

// Type discriminates journal records. The five kinds mirror the engine's
// committed mutations exactly: an engine driven through the same sequence
// of admits, cancels and steps is bit-identical to the one that wrote the
// journal (internal/sim's seeds are derived from job IDs, which replay in
// order).
type Type string

const (
	// TypeAdmit is a single-job admission (sim.Engine.Admit).
	TypeAdmit Type = "admit"
	// TypeBatch is an all-or-nothing burst admission (Engine.AdmitBatch).
	TypeBatch Type = "batch"
	// TypeCancel withdraws a pending or active job (Engine.Cancel).
	TypeCancel Type = "cancel"
	// TypeStep is one executed engine step; Now is the virtual clock after
	// it ran, recorded so replay divergence is detected immediately.
	TypeStep Type = "step"
	// TypeSteps is an aggregated batch of N ≥ 2 consecutive executed steps
	// (one Engine.StepN call); Now is the clock after the last of them.
	// Replay re-executes the batch with StepN, which is bit-identical to N
	// single steps, so one record replaces N without weakening the
	// cross-checks. Written by servers batching ticker catch-up; a journal
	// may freely mix step and steps records.
	TypeSteps Type = "steps"
	// TypeSnap is an idle-point checkpoint written by compaction; it is
	// only valid as the first record of a journal.
	TypeSnap Type = "snap"
	// TypeSteal is the victim half of a cross-shard work steal: the listed
	// pending jobs were withdrawn from this engine and re-admitted on shard
	// To at local IDs NBase, NBase+1, … (internal/server's two-lock steal
	// protocol). Replay withdraws the same jobs, so the victim engine stays
	// bit-identical; the thief's journal carries the matching admit record
	// tagged with From. Steal records are version-2: pre-steal readers fail
	// loudly instead of misreplaying.
	TypeSteal Type = "steal"
	// TypeFair marks a fairness-enabled journal and carries the fair-share
	// ledger (usage accumulators, in-flight job→tenant map, half-life). It
	// is written as the head record of a fresh fairness-enabled journal;
	// compaction instead attaches the ledger to the snap record. The engine
	// ignores fair records — they exist for the server's replay observer,
	// which rebuilds bit-identical fair-share state from them plus the
	// tenant tags on admit records.
	TypeFair Type = "fair"
)

// FairState is the fair-share ledger payload of fair and snap records.
// V versions the encoding so future ledger shapes can evolve without
// breaking old journals.
type FairState struct {
	// V is the payload format version (currently 1).
	V int `json:"v"`
	// HalfLife is the usage decay half-life the ledger was accumulated
	// under, in virtual steps. Replaying under a different half-life would
	// silently change decay math, so replay cross-checks it.
	HalfLife int64 `json:"half_life"`
	// Usage maps leaf paths to their decayed usage accumulators.
	Usage map[string]fairshare.Usage `json:"usage,omitempty"`
	// Jobs maps in-flight engine-local job IDs to their leaf paths.
	Jobs map[int]string `json:"jobs,omitempty"`
}

// Clone deep-copies the ledger so journal payloads never alias live maps.
func (f FairState) Clone() FairState {
	out := FairState{V: f.V, HalfLife: f.HalfLife}
	if f.Usage != nil {
		out.Usage = make(map[string]fairshare.Usage, len(f.Usage))
		for k, v := range f.Usage {
			out.Usage[k] = v
		}
	}
	if f.Jobs != nil {
		out.Jobs = make(map[int]string, len(f.Jobs))
		for k, v := range f.Jobs {
			out.Jobs[k] = v
		}
	}
	return out
}

// StealState is the work-stealing bookkeeping a snap record carries for
// the server: compaction drops the steal/admit records the live state was
// built from, so the checkpoint must carry what survives them.
type StealState struct {
	// V is the payload format version (currently 1).
	V int `json:"v"`
	// In counts jobs this shard admitted via steals rather than client
	// submissions; the server rebuilds its submitted counter as the
	// engine's admitted total minus In.
	In int64 `json:"in,omitempty"`
	// Redirects maps shard-local IDs of jobs stolen from this shard to the
	// namespaced IDs they now live under, preserving status/cancel by the
	// original ID across a restart that replays from this snapshot.
	Redirects map[int]int `json:"redirects,omitempty"`
}

// Clone deep-copies the steal state so journal payloads never alias the
// server's live redirect map.
func (s StealState) Clone() StealState {
	out := StealState{V: s.V, In: s.In}
	if s.Redirects != nil {
		out.Redirects = make(map[int]int, len(s.Redirects))
		for k, v := range s.Redirects {
			out.Redirects[k] = v
		}
	}
	return out
}

// JobRecord is one admitted job inside an admit/batch record. Release is
// the absolute virtual release time after the server normalized "now"
// releases, so replay does not depend on the clock at decode time.
//
// Exactly one of Graph, Mold and Rigid is set. Graph-backed jobs omit
// Fam — the original record shape — so journals from family-less builds
// decode and re-encode byte-identically. Non-graph jobs carry their
// runtime-family tag in Fam and force the enclosing Record's V to
// recordVersion.
type JobRecord struct {
	Release int64 `json:"release"`
	// Fam is the runtime-family tag ("moldable" for moldable specs,
	// "profile" for rigid specs); empty means graph-backed (the legacy
	// encoding, implicitly family "dag").
	Fam   string             `json:"fam,omitempty"`
	Graph *dag.Graph         `json:"graph,omitempty"`
	Mold  *moldable.Spec     `json:"mold,omitempty"`
	Rigid *profile.RigidSpec `json:"rigid,omitempty"`
}

// spec reconstructs the admitted sim.JobSpec. Graph-backed records are a
// field copy; moldable and rigid records re-validate through their
// packages' FromSpec constructors, so a corrupt-but-CRC-valid payload
// fails here with a located error instead of panicking inside the engine.
func (j JobRecord) spec() (sim.JobSpec, error) {
	switch {
	case j.Graph != nil:
		return sim.JobSpec{Graph: j.Graph, Release: j.Release}, nil
	case j.Rigid != nil:
		job, err := profile.FromRigidSpec(*j.Rigid)
		if err != nil {
			return sim.JobSpec{}, err
		}
		return sim.JobSpec{Source: job, Release: j.Release}, nil
	default:
		job, err := moldable.FromSpec(*j.Mold)
		if err != nil {
			return sim.JobSpec{}, err
		}
		return sim.JobSpec{Source: job, Release: j.Release}, nil
	}
}

// recordVersion is the version stamped on admit/batch records that carry
// non-graph jobs. Version 0 (the field omitted) is the original all-graph
// encoding; bumping the version on the new shape makes old readers fail
// loudly on journals they cannot replay instead of misdecoding them.
const recordVersion = 2

// Record is one journaled engine mutation.
type Record struct {
	Type Type `json:"t"`
	// V is the record encoding version: 0 (omitted) for the original
	// shapes, recordVersion for admit/batch records carrying non-graph
	// jobs.
	V int `json:"v,omitempty"`
	// Base is the engine-assigned ID of the first admitted job (admit and
	// batch records); replay cross-checks it against the IDs the engine
	// re-assigns.
	Base int `json:"base,omitempty"`
	// Jobs carries the admitted specs (admit: exactly one; batch: one or
	// more).
	Jobs []JobRecord `json:"jobs,omitempty"`
	// ID is the cancelled job's engine-local ID (cancel records).
	ID int `json:"id,omitempty"`
	// Now is the virtual clock after the step executed (step and steps
	// records).
	Now int64 `json:"now,omitempty"`
	// N is the number of steps covered by a steps record (≥ 2; plain step
	// records omit it).
	N int64 `json:"n,omitempty"`
	// Snap is the engine checkpoint (snap records).
	Snap *sim.EngineCheckpoint `json:"snap,omitempty"`
	// Seq is the replication sequence cursor a snap record carries: the
	// number of mutation records the checkpoint covers, counted from the
	// engine's birth. A record's sequence number is its 1-based position in
	// that count, so a journal headed by a snap with Seq=s continues at
	// s+1. Zero (omitted) on journals written before replication existed —
	// their snapshots simply cannot seed a follower and catch-up falls back
	// to full replay.
	Seq int64 `json:"seq,omitempty"`
	// Tenant is the fair-share leaf path the admission was accounted
	// against (admit and batch records under a fairness-enabled server).
	// Empty on fairness-off journals, keeping their encoding byte-identical
	// to pre-fairness builds.
	Tenant string `json:"tenant,omitempty"`
	// Fair is the fair-share ledger (fair records, and snap records written
	// by a fairness-enabled server).
	Fair *FairState `json:"fair,omitempty"`
	// IDs lists the shard-local IDs withdrawn by a steal record, in the
	// order they were re-admitted on the thief.
	IDs []int `json:"ids,omitempty"`
	// To is the thief's shard index (steal records).
	To int `json:"to,omitempty"`
	// NBase is the first thief-local ID the stolen jobs were re-admitted
	// at (steal records): IDs[i] moved to thief-local NBase+i.
	NBase int `json:"nbase,omitempty"`
	// From tags a thief-side admit/batch record as the re-admission half of
	// a steal: From[i] is job i's original namespaced ID on the victim.
	// Forces V to recordVersion. Empty on client admissions.
	From []int `json:"from,omitempty"`
	// Steal is the server's work-stealing bookkeeping (snap records written
	// by a steal-enabled server that has stolen at least once).
	Steal *StealState `json:"steal,omitempty"`
}

// encodeRecord serializes a record payload (the framing — length prefix
// and CRC — is the Journal's business, not the record's).
func encodeRecord(r Record) ([]byte, error) {
	if err := validateRecord(r); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// decodeRecord parses and validates one payload. Both directions validate
// so a corrupt-but-CRC-valid record (impossible from torn writes, possible
// from software bugs) is caught at the earliest boundary.
func decodeRecord(payload []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, fmt.Errorf("journal: decode record: %w", err)
	}
	if err := validateRecord(r); err != nil {
		return Record{}, err
	}
	return r, nil
}

func validateRecord(r Record) error {
	switch r.Type {
	case TypeAdmit:
		if len(r.Jobs) != 1 {
			return fmt.Errorf("journal: admit record has %d jobs, want 1", len(r.Jobs))
		}
	case TypeBatch:
		if len(r.Jobs) == 0 {
			return fmt.Errorf("journal: batch record has no jobs")
		}
	case TypeCancel, TypeStep:
		if len(r.Jobs) != 0 || r.Snap != nil || r.N != 0 || r.Tenant != "" || r.Fair != nil || r.Seq != 0 {
			return fmt.Errorf("journal: %s record carries stray fields", r.Type)
		}
	case TypeSteps:
		if len(r.Jobs) != 0 || r.Snap != nil || r.Tenant != "" || r.Fair != nil || r.Seq != 0 {
			return fmt.Errorf("journal: steps record carries stray fields")
		}
		if r.N < 2 {
			return fmt.Errorf("journal: steps record covers %d steps, want ≥ 2", r.N)
		}
	case TypeSnap:
		if r.Snap == nil {
			return fmt.Errorf("journal: snap record has no checkpoint")
		}
		if r.Tenant != "" {
			return fmt.Errorf("journal: snap record carries stray fields")
		}
		if r.Seq < 0 {
			return fmt.Errorf("journal: snap record has negative sequence cursor %d", r.Seq)
		}
	case TypeFair:
		if len(r.Jobs) != 0 || r.Snap != nil || r.N != 0 || r.Tenant != "" || r.Seq != 0 {
			return fmt.Errorf("journal: fair record carries stray fields")
		}
		if r.Fair == nil {
			return fmt.Errorf("journal: fair record has no ledger")
		}
	case TypeSteal:
		if len(r.Jobs) != 0 || r.Snap != nil || r.N != 0 || r.Tenant != "" || r.Fair != nil || r.Seq != 0 {
			return fmt.Errorf("journal: steal record carries stray fields")
		}
		if len(r.IDs) == 0 {
			return fmt.Errorf("journal: steal record withdraws no jobs")
		}
		for i, id := range r.IDs {
			if id < 0 {
				return fmt.Errorf("journal: steal record ID %d is negative (%d)", i, id)
			}
		}
		if r.To < 0 || r.NBase < 0 {
			return fmt.Errorf("journal: steal record has negative destination (to %d, nbase %d)", r.To, r.NBase)
		}
		if r.V != recordVersion {
			return fmt.Errorf("journal: steal record version %d, want %d", r.V, recordVersion)
		}
	default:
		return fmt.Errorf("journal: unknown record type %q", r.Type)
	}
	if r.Type != TypeSteal && (len(r.IDs) != 0 || r.To != 0 || r.NBase != 0) {
		return fmt.Errorf("journal: %s record carries steal fields", r.Type)
	}
	if r.Steal != nil {
		if r.Type != TypeSnap {
			return fmt.Errorf("journal: %s record carries steal state", r.Type)
		}
		if r.Steal.V != 1 {
			return fmt.Errorf("journal: steal state version %d, want 1", r.Steal.V)
		}
		if r.Steal.In < 0 {
			return fmt.Errorf("journal: steal state has negative stolen-in count %d", r.Steal.In)
		}
	}
	if r.Fair != nil {
		if r.Type != TypeFair && r.Type != TypeSnap {
			return fmt.Errorf("journal: %s record carries a fair ledger", r.Type)
		}
		if r.Fair.V != 1 {
			return fmt.Errorf("journal: fair ledger version %d, want 1", r.Fair.V)
		}
		if r.Fair.HalfLife < 1 {
			return fmt.Errorf("journal: fair ledger half-life %d, want ≥ 1", r.Fair.HalfLife)
		}
	}
	if r.Type == TypeAdmit || r.Type == TypeBatch {
		if r.Base < 0 {
			return fmt.Errorf("journal: %s record has negative base ID %d", r.Type, r.Base)
		}
		if r.Seq != 0 {
			return fmt.Errorf("journal: %s record carries a sequence cursor", r.Type)
		}
		if r.V != 0 && r.V != recordVersion {
			return fmt.Errorf("journal: %s record version %d, want 0 or %d", r.Type, r.V, recordVersion)
		}
		if len(r.From) != 0 {
			if len(r.From) != len(r.Jobs) {
				return fmt.Errorf("journal: %s record has %d origin IDs for %d jobs", r.Type, len(r.From), len(r.Jobs))
			}
			if r.V != recordVersion {
				return fmt.Errorf("journal: %s record carries steal origins but version is %d, want %d", r.Type, r.V, recordVersion)
			}
			if r.Tenant != "" {
				return fmt.Errorf("journal: %s record carries both a tenant and steal origins", r.Type)
			}
			for i, id := range r.From {
				if id < 0 {
					return fmt.Errorf("journal: %s record origin ID %d is negative (%d)", r.Type, i, id)
				}
			}
		}
		for i, j := range r.Jobs {
			payloads := 0
			if j.Graph != nil {
				payloads++
			}
			if j.Mold != nil {
				payloads++
			}
			if j.Rigid != nil {
				payloads++
			}
			switch {
			case payloads > 1:
				return fmt.Errorf("journal: %s record job %d has %d job payloads, want exactly one of graph/mold/rigid", r.Type, i, payloads)
			case j.Graph != nil:
				if j.Fam != "" {
					return fmt.Errorf("journal: %s record job %d is graph-backed but tagged family %q", r.Type, i, j.Fam)
				}
			case j.Mold != nil:
				if j.Fam != sim.FamilyMoldable.String() {
					return fmt.Errorf("journal: %s record job %d carries a moldable spec but family tag %q", r.Type, i, j.Fam)
				}
				if r.V != recordVersion {
					return fmt.Errorf("journal: %s record job %d is moldable but record version is %d, want %d", r.Type, i, r.V, recordVersion)
				}
			case j.Rigid != nil:
				if j.Fam != sim.FamilyProfile.String() {
					return fmt.Errorf("journal: %s record job %d carries a rigid spec but family tag %q", r.Type, i, j.Fam)
				}
				if r.V != recordVersion {
					return fmt.Errorf("journal: %s record job %d is rigid but record version is %d, want %d", r.Type, i, r.V, recordVersion)
				}
			default:
				return fmt.Errorf("journal: %s record job %d has no graph", r.Type, i)
			}
			if j.Release < 0 {
				return fmt.Errorf("journal: %s record job %d has negative release %d", r.Type, i, j.Release)
			}
		}
	} else if r.V != 0 && r.Type != TypeSteal {
		return fmt.Errorf("journal: %s record carries stray fields", r.Type)
	} else if len(r.From) != 0 {
		return fmt.Errorf("journal: %s record carries steal origins", r.Type)
	}
	return nil
}

// AdmitRecord builds the journal record for a committed admission: one
// job as TypeAdmit, several as TypeBatch. base is the first assigned
// engine-local ID; specs must carry a replayable description — a dag
// graph, a moldable spec or a rigid spec — with normalized (absolute)
// release times. All-graph admissions keep the original unversioned
// encoding; a non-graph job anywhere in the batch bumps the record to
// recordVersion.
func AdmitRecord(base int, specs []sim.JobSpec) (Record, error) {
	var rec Record
	if err := AdmitRecordInto(&rec, base, specs); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// AdmitRecordInto builds the same record as AdmitRecord but in place,
// recycling rec's Jobs backing array and the per-slot spec boxes from the
// previous call. The record's payload only lives until the caller encodes
// it, so a server journaling every admission through one scratch Record
// writes the steady-state submit path without per-admission allocation.
// On error rec is left in an unspecified state and must not be encoded.
func AdmitRecordInto(rec *Record, base int, specs []sim.JobSpec) error {
	jobs := rec.Jobs
	if cap(jobs) < len(specs) {
		jobs = make([]JobRecord, len(specs))
	} else {
		jobs = jobs[:len(specs)]
	}
	typ := TypeBatch
	if len(specs) == 1 {
		typ = TypeAdmit
	}
	version := 0
	for i, s := range specs {
		// Pointer boxes from the previous use of this slot, read before the
		// slot is overwritten so they can be refilled instead of reallocated.
		moldBox, rigidBox := jobs[i].Mold, jobs[i].Rigid
		switch src := s.Source.(type) {
		case nil:
			if s.Graph == nil {
				return fmt.Errorf("journal: job %d is not journalable; need a dag graph, a moldable spec or a rigid spec", base+i)
			}
			jobs[i] = JobRecord{Release: s.Release, Graph: s.Graph}
		case *moldable.Job:
			if moldBox == nil {
				moldBox = new(moldable.Spec)
			}
			*moldBox = src.Spec()
			jobs[i] = JobRecord{Release: s.Release, Fam: sim.FamilyMoldable.String(), Mold: moldBox}
			version = recordVersion
		case *profile.Rigid:
			if rigidBox == nil {
				rigidBox = new(profile.RigidSpec)
			}
			*rigidBox = src.Spec()
			jobs[i] = JobRecord{Release: s.Release, Fam: sim.FamilyProfile.String(), Rigid: rigidBox}
			version = recordVersion
		default:
			return fmt.Errorf("journal: job %d (family %q) is not journalable; need a dag graph, a moldable spec or a rigid spec", base+i, sim.FamilyOf(src))
		}
	}
	*rec = Record{Type: typ, V: version, Base: base, Jobs: jobs}
	return nil
}

// CancelRecord builds the record for a committed cancellation.
func CancelRecord(id int) Record { return Record{Type: TypeCancel, ID: id} }

// StealRecord builds the victim-side record for a committed cross-shard
// steal: the shard-local jobs ids were withdrawn and re-admitted on shard
// `to` at local IDs nbase, nbase+1, …. The IDs are copied so the journal
// payload never aliases the caller's scratch.
func StealRecord(ids []int, to, nbase int) Record {
	return Record{Type: TypeSteal, V: recordVersion, IDs: append([]int(nil), ids...), To: to, NBase: nbase}
}

// StealAdmitRecord builds the thief-side record for a committed cross-shard
// steal: a normal admit/batch record for the re-admitted specs, tagged with
// the jobs' original namespaced IDs so replay and reconciliation can tell
// steal re-admissions from client submissions. from[i] is specs[i]'s
// namespaced ID on the victim; the slice is copied.
func StealAdmitRecord(base int, specs []sim.JobSpec, from []int) (Record, error) {
	if len(from) != len(specs) {
		return Record{}, fmt.Errorf("journal: steal admit has %d origin IDs for %d specs", len(from), len(specs))
	}
	rec, err := AdmitRecord(base, specs)
	if err != nil {
		return Record{}, err
	}
	rec.V = recordVersion
	rec.From = append([]int(nil), from...)
	return rec, nil
}

// StepRecord builds the record for one executed step ending at virtual
// time now.
func StepRecord(now int64) Record { return Record{Type: TypeStep, Now: now} }

// FairRecord builds a fair-share ledger record (the head marker of a
// fairness-enabled journal). The ledger is deep-copied so the caller's
// live maps are never aliased by the journal.
func FairRecord(st FairState) Record {
	c := st.Clone()
	return Record{Type: TypeFair, Fair: &c}
}

// StepsRecord builds the record for n consecutive executed steps ending at
// virtual time now. n == 1 degrades to a plain step record, so journals
// written by batching servers stay byte-compatible with single-step
// readers whenever no batching actually happened.
func StepsRecord(n, now int64) Record {
	if n == 1 {
		return StepRecord(now)
	}
	return Record{Type: TypeSteps, Now: now, N: n}
}
