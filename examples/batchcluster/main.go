// Batchcluster: the batched-job setting of the paper's mean-response-time
// analysis (Sections 6–7). A batch of heterogeneous jobs is released at
// time zero on a small K-resource cluster; the program runs K-RAD, checks
// every applicable theorem bound on the measured schedule, and shows how
// the measured competitive ratio compares to the proven worst cases.
//
//	go run ./examples/batchcluster [-n 60] [-k 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"krad"
)

func main() {
	log.SetFlags(0)
	nFlag := flag.Int("n", 60, "batch size (jobs)")
	kFlag := flag.Int("k", 3, "resource categories")
	seedFlag := flag.Int64("seed", 3, "workload seed")
	flag.Parse()

	k, n := *kFlag, *nFlag
	caps := make([]int, k)
	for i := range caps {
		caps[i] = 4
	}

	specs, err := krad.Mix{
		K: k, Jobs: n, MinSize: 4, MaxSize: 60, Seed: *seedFlag,
	}.Generate()
	if err != nil {
		log.Fatal(err)
	}

	res, err := krad.Run(krad.Config{
		K: k, Caps: caps, Scheduler: krad.NewKRAD(k),
		Pick: krad.PickFIFO, ValidateAllotments: true,
	}, specs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("batch of %d jobs on K=%d, caps=%v\n", n, k, caps)
	fmt.Printf("makespan %d, mean response %.1f\n\n", res.Makespan, res.MeanResponse())

	// Evaluate every bound the paper proves for this setting.
	checks := []krad.BoundCheck{
		krad.CheckLemma2(res),
		krad.CheckTheorem3(res),
		krad.CheckTheorem6(res),
	}
	if bc, applicable := krad.CheckTheorem5(res); applicable {
		checks = append(checks, bc)
	} else {
		fmt.Println("(light-workload Theorem 5 not applicable: some category was overloaded)")
	}
	allOK := true
	for _, bc := range checks {
		status := "OK  "
		if !bc.OK {
			status = "FAIL"
			allOK = false
		}
		fmt.Printf("%s %s\n", status, bc)
	}
	if !allOK {
		log.Fatal("a proven bound failed on a measured run — reproduction bug")
	}

	fmt.Println("\nAll proven bounds hold on the measured schedule. The measured")
	fmt.Println("ratios sit far below the worst cases: the adversarial instances of")
	fmt.Println("Theorem 1 (see examples/adversarial) are what saturates them.")
}
