package core

import (
	"testing"

	"krad/internal/sched"
)

// TestDeqLeapTotalsMatchesSequential cross-checks the closed-form window
// aggregate against literally running Deq for every step of the window and
// summing, over a grid of job counts, capacities, start times and window
// lengths — including every remainder-rotation alignment.
func TestDeqLeapTotalsMatchesSequential(t *testing.T) {
	for _, nj := range []int{1, 2, 3, 4, 5, 7, 8, 13} {
		for _, p := range []int{1, 2, 3, 5, 8, 16, 29, 64} {
			if p < nj {
				continue // not all-deprived: horizon is 0, leap never fires
			}
			for _, t0 := range []int64{0, 1, 2, 5, 9, 1000003} {
				for _, n := range []int64{1, 2, 3, 7, 20, 101} {
					// Desires large enough to stay deprived all window.
					jobs := make([]sched.CatJob, nj)
					for i := range jobs {
						jobs[i] = sched.CatJob{ID: i, Desire: p * int(n+2)}
					}
					got := make([]int, nj)
					deqLeapTotals(t0, jobs, p, n, got)

					want := make([]int, nj)
					desires := make([]int, nj)
					for i := range desires {
						desires[i] = jobs[i].Desire
					}
					for s := t0; s < t0+n; s++ {
						for i, a := range Deq(desires, p, int(s)) {
							want[i] += a
							desires[i] -= a
						}
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("nj=%d p=%d t0=%d n=%d job %d: closed form %d, sequential %d",
								nj, p, t0, n, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestDeqStableHorizonSafe verifies the horizon's promise: for every step
// of the vouched window plus the entry step, all jobs stay strictly
// deprived (each step is the all-deprived branch) and every desire stays
// strictly positive after the window — no completion or phase boundary
// can fall inside a leap.
func TestDeqStableHorizonSafe(t *testing.T) {
	for _, nj := range []int{1, 2, 3, 5, 8} {
		for _, p := range []int{1, 3, 8, 17, 64} {
			for _, d0 := range []int{1, 2, 3, 10, 65, 1000} {
				jobs := make([]sched.CatJob, nj)
				for i := range jobs {
					// Slightly staggered desires exercise the min.
					jobs[i] = sched.CatJob{ID: i, Desire: d0 + i}
				}
				h := deqStableHorizon(jobs, p)
				if h == 0 {
					continue
				}
				if h == sched.Unbounded {
					t.Fatalf("nj=%d p=%d d0=%d: Unbounded horizon with jobs present", nj, p, d0)
				}
				desires := make([]int, nj)
				for i := range desires {
					desires[i] = jobs[i].Desire
				}
				fair := p / nj
				for s := int64(0); s <= h; s++ {
					for _, d := range desires {
						if d <= fair {
							t.Fatalf("nj=%d p=%d d0=%d step %d/%d: desire %d ≤ fair %d — job satisfied mid-window", nj, p, d0, s, h, d, fair)
						}
					}
					for i, a := range Deq(desires, p, int(s)) {
						desires[i] -= a
					}
				}
				for i, d := range desires {
					if d <= 0 {
						t.Fatalf("nj=%d p=%d d0=%d job %d: desire %d ≤ 0 after window h=%d", nj, p, d0, i, d, h)
					}
				}
			}
		}
	}
}
