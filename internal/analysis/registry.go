package analysis

import (
	"fmt"
	"sort"

	"krad/internal/sched"
)

// NewScheduler constructs a scheduler by report name for k categories.
// Names match the E8 comparison table: k-rad, deq-only, rr-only, equi,
// fcfs, greedy-desire, sjf-oracle.
func NewScheduler(name string, k int) (sched.Scheduler, error) {
	_, mk := schedulerFactories(k)
	f, ok := mk[name]
	if !ok {
		return nil, fmt.Errorf("analysis: unknown scheduler %q (have %v)", name, SchedulerNames())
	}
	return f(), nil
}

// SchedulerNames lists the registry's names, sorted.
func SchedulerNames() []string {
	names, _ := schedulerFactories(1)
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
