package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/metrics"
	"krad/internal/sim"
)

func TestExactMakespanKnownInstances(t *testing.T) {
	// Single chain of 4 on any machine: T* = 4.
	chain := dag.UniformChain(1, 4, 1)
	got, err := ExactMakespan(1, []int{2}, []*dag.Graph{chain})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("chain T* = %d, want 4", got)
	}

	// 6 singletons on 2 processors: T* = 3.
	var singles []*dag.Graph
	for i := 0; i < 6; i++ {
		singles = append(singles, dag.Singleton(1, 1))
	}
	got, err = ExactMakespan(1, []int{2}, singles)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("singletons T* = %d, want 3", got)
	}

	// Two-category pipeline: chain 1→2 twice on caps (1,1): the two jobs
	// pipeline perfectly: T* = 3.
	a := dag.Chain(2, 2, func(i int) dag.Category { return dag.Category(i + 1) })
	b := dag.Chain(2, 2, func(i int) dag.Category { return dag.Category(i + 1) })
	got, err = ExactMakespan(2, []int{1, 1}, []*dag.Graph{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("pipeline T* = %d, want 3", got)
	}
}

func TestExactMakespanValidation(t *testing.T) {
	g := dag.Singleton(1, 1)
	if _, err := ExactMakespan(2, []int{1}, []*dag.Graph{g}); err == nil {
		t.Error("caps mismatch accepted")
	}
	if _, err := ExactMakespan(2, []int{1, 1}, []*dag.Graph{g}); err == nil {
		t.Error("K mismatch accepted")
	}
	big := dag.UniformChain(1, 30, 1)
	if _, err := ExactMakespan(1, []int{1}, []*dag.Graph{big}); err == nil {
		t.Error("oversized instance accepted")
	}
}

// TestQuickExactBracketsSimulationAndLowerBound: on random micro-instances
// the exact optimum must sit between the Section 4 lower bound and every
// simulated schedule's makespan.
func TestQuickExactBrackets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(2)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = 1 + rng.Intn(2)
		}
		nJobs := 1 + rng.Intn(3)
		jobs := make([]*dag.Graph, nJobs)
		specs := make([]sim.JobSpec, nJobs)
		total := 0
		for i := range jobs {
			jobs[i] = dag.Random(k, dag.RandomOpts{Tasks: 1 + rng.Intn(5), EdgeProb: 0.3, Window: 3}, rng)
			specs[i] = sim.JobSpec{Graph: jobs[i]}
			total += jobs[i].NumTasks()
		}
		if total > 14 {
			return true
		}
		tStar, err := ExactMakespan(k, caps, jobs)
		if err != nil {
			return false
		}
		res, err := sim.Run(sim.Config{
			K: k, Caps: caps, Scheduler: core.NewKRAD(k),
			Pick: dag.PickLIFO, ValidateAllotments: true,
		}, specs)
		if err != nil {
			return false
		}
		lb := metrics.MakespanLowerBound(res)
		return int64(tStar) >= lb && res.Makespan >= int64(tStar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
