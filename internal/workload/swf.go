package workload

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"krad/internal/dag"
	"krad/internal/profile"
	"krad/internal/sim"
)

// SWF support: the Standard Workload Format of the Parallel Workloads
// Archive (Feitelson et al.) is the de-facto interchange format for real
// supercomputer logs. An SWF line has 18 whitespace-separated integer
// fields; ';' starts a comment. This reader maps each record onto the
// K-resource model as a *rigid* job — p processors for t time steps —
// realized as a profile job of t phases × p tasks, so its work is p·t and
// its span t, exactly the rigid-job semantics. Categories do not exist in
// SWF; the Category callback assigns them (by partition, by executable,
// round-robin, ...).

// SWFRecord is one parsed job record (the fields this library uses; the
// full 18 are preserved in Raw).
type SWFRecord struct {
	// JobID is field 1.
	JobID int
	// Submit is field 2 (seconds since log start).
	Submit int64
	// RunTime is field 4 (seconds; −1 = unknown).
	RunTime int64
	// Procs is field 5 (allocated processors; falls back to field 8,
	// requested, when −1).
	Procs int
	// Partition is field 16 (−1 = unknown) — a common category proxy.
	Partition int
	// Raw holds all 18 fields as parsed.
	Raw [18]int64
}

// SWFOptions controls the mapping onto the K-resource model.
type SWFOptions struct {
	// K is the number of resource categories of the target machine.
	K int
	// TimeScale converts log seconds to simulation steps: one step per
	// TimeScale seconds (≥ 1; e.g. 60 for minute-granularity steps).
	// Runtimes round up so no job becomes empty.
	TimeScale int64
	// MaxJobs truncates the log after this many accepted records
	// (0 = no limit).
	MaxJobs int
	// MaxProcs caps a record's processor count (0 = no cap) — logs from
	// machines much larger than the simulated one would otherwise swamp a
	// single category.
	MaxProcs int
	// Category assigns a resource category to a record; nil means
	// round-robin over [1, K] by acceptance order.
	Category func(rec SWFRecord, index int) dag.Category
}

// ParseSWF reads an SWF log and returns engine-ready job specs (releases
// in simulation steps, shapes as rigid profile jobs) plus the parsed
// records. Records with unusable run times or processor counts are
// skipped, not fatal: real logs contain cancelled and malformed entries.
func ParseSWF(r io.Reader, opts SWFOptions) ([]sim.JobSpec, []SWFRecord, error) {
	if opts.K < 1 {
		return nil, nil, fmt.Errorf("workload: SWF options need K ≥ 1")
	}
	if opts.TimeScale < 1 {
		return nil, nil, fmt.Errorf("workload: SWF options need TimeScale ≥ 1")
	}
	assign := opts.Category
	if assign == nil {
		assign = func(_ SWFRecord, i int) dag.Category { return dag.Category(i%opts.K + 1) }
	}

	var specs []sim.JobSpec
	var records []SWFRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 18 {
			return nil, nil, fmt.Errorf("workload: SWF line %d has %d fields, want 18", lineNo, len(fields))
		}
		var rec SWFRecord
		for i := 0; i < 18; i++ {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("workload: SWF line %d field %d: %w", lineNo, i+1, err)
			}
			rec.Raw[i] = v
		}
		rec.JobID = int(rec.Raw[0])
		rec.Submit = rec.Raw[1]
		rec.RunTime = rec.Raw[3]
		rec.Procs = int(rec.Raw[4])
		if rec.Procs <= 0 {
			rec.Procs = int(rec.Raw[7]) // requested
		}
		rec.Partition = int(rec.Raw[15])

		// Skip unusable records (cancelled jobs, unknown durations).
		if rec.RunTime <= 0 || rec.Procs <= 0 || rec.Submit < 0 {
			continue
		}
		if opts.MaxProcs > 0 && rec.Procs > opts.MaxProcs {
			rec.Procs = opts.MaxProcs
		}

		steps := (rec.RunTime + opts.TimeScale - 1) / opts.TimeScale
		cat := assign(rec, len(records))
		if cat < 1 || int(cat) > opts.K {
			return nil, nil, fmt.Errorf("workload: SWF line %d: category %d out of [1,%d]", lineNo, cat, opts.K)
		}
		phases := make([]profile.Phase, steps)
		for p := range phases {
			tasks := make([]int, opts.K)
			tasks[cat-1] = rec.Procs
			phases[p] = profile.Phase{Tasks: tasks}
		}
		job, err := profile.New(opts.K, fmt.Sprintf("swf-%d", rec.JobID), phases)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: SWF line %d: %w", lineNo, err)
		}
		specs = append(specs, sim.JobSpec{
			Source:  job,
			Release: rec.Submit / opts.TimeScale,
		})
		records = append(records, rec)
		if opts.MaxJobs > 0 && len(records) >= opts.MaxJobs {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("workload: SWF read: %w", err)
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("workload: SWF log contained no usable jobs")
	}
	return specs, records, nil
}

// WriteSyntheticSWF emits a small synthetic-but-plausible SWF log (n jobs,
// Poisson-ish arrivals, power-of-two processor requests) — handy for demos
// and tests when no archive log is at hand.
func WriteSyntheticSWF(w io.Writer, n int, seed int64) error {
	if n < 1 {
		return fmt.Errorf("workload: synthetic SWF needs n ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	if _, err := fmt.Fprintln(w, "; synthetic SWF log generated by krad (18 fields per record)"); err != nil {
		return err
	}
	submit := int64(0)
	for i := 1; i <= n; i++ {
		submit += int64(rng.Intn(600))
		run := int64(60 + rng.Intn(7200))
		procs := 1 << rng.Intn(6)
		partition := 1 + rng.Intn(3)
		// 18 fields: id submit wait run procs avgcpu mem reqprocs reqtime
		// reqmem status uid gid exe queue partition prev think
		if _, err := fmt.Fprintf(w, "%d %d 0 %d %d -1 -1 %d %d -1 1 1 1 %d 1 %d -1 -1\n",
			i, submit, run, procs, procs, run, 1+rng.Intn(9), partition); err != nil {
			return err
		}
	}
	return nil
}
