package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestStealSmokeRealKradd boots a real 8-shard kradd with -steal and
// hash placement, replays a zipf-skewed stream through it (every batch
// carries a hot-tailed placement key, so a handful of shards soak the
// load), and asserts full conservation — every accepted job drains,
// zero errors — plus a non-zero steal counter proving the skew was
// drained by peers, not just the hot shards. Gated behind
// KRAD_STEAL_SMOKE=1 like the replay smoke: real binaries, real port.
func TestStealSmokeRealKradd(t *testing.T) {
	if os.Getenv("KRAD_STEAL_SMOKE") != "1" {
		t.Skip("set KRAD_STEAL_SMOKE=1 to run the steal smoke test")
	}
	dir := t.TempDir()
	kradd := filepath.Join(dir, "kradd")
	replay := filepath.Join(dir, "kradreplay")
	for bin, pkg := range map[string]string{kradd: "krad/cmd/kradd", replay: "krad/cmd/kradreplay"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	jdir := filepath.Join(dir, "journal")
	daemon := exec.Command(kradd,
		"-addr", addr, "-k", "2", "-caps", "2,2",
		"-shards", "8", "-steal", "-placement", "hash",
		"-queue", "200000", "-retire-done",
		"-journal-dir", jdir, "-fsync", "interval", "-snapshot-every", "0")
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { daemon.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			daemon.Process.Kill()
		}
	}()
	base := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("kradd never became ready")
		}
		time.Sleep(100 * time.Millisecond)
	}

	jobs := 20000
	if v := os.Getenv("KRAD_STEAL_SMOKE_JOBS"); v != "" {
		fmt.Sscanf(v, "%d", &jobs)
	}
	outPath := filepath.Join(dir, "report.json")
	cmd := exec.Command(replay,
		"-addr", base, "-k", "2", "-jobs", fmt.Sprint(jobs),
		"-mix", "rigid=0.9,dag=0.05,mold=0.05", "-workers", "8", "-batch", "16",
		"-skew", "zipf", "-skew-keys", "64",
		"-drain-timeout", "5m", "-out", outPath)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("kradreplay: %v", err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Skew != "zipf" {
		t.Fatalf("report skew %q, want zipf", rep.Skew)
	}
	// Conservation: every job accepted, every job drained, none duplicated
	// (a duplicate would overshoot the drain count), zero errors.
	if rep.Accepted != int64(jobs) || rep.Errors != 0 {
		t.Fatalf("accepted %d errors %d, want %d/0", rep.Accepted, rep.Errors, jobs)
	}
	if rep.Drain == nil || rep.Drain.Jobs != int64(jobs) {
		t.Fatalf("drain %+v, want exactly %d jobs", rep.Drain, jobs)
	}

	// The skewed stream must actually have been rebalanced by stealing.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Stats struct {
			Completed int64 `json:"completed"`
			Steal     *struct {
				Stolen   int64 `json:"stolen"`
				StolenIn int64 `json:"stolen_in"`
			} `json:"steal"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Stats.Completed != int64(jobs) {
		t.Fatalf("daemon completed %d, want %d", health.Stats.Completed, jobs)
	}
	st := health.Stats.Steal
	if st == nil || st.Stolen == 0 {
		t.Fatalf("steal counters %+v after a zipf run, want > 0 steals", st)
	}
	if st.Stolen != st.StolenIn {
		t.Fatalf("steal counters diverged: %d out vs %d in (a lost or duplicated move)", st.Stolen, st.StolenIn)
	}
	t.Logf("steal smoke: %d jobs, %d stolen (%.1f%%), drain %.0f jobs/s",
		jobs, st.Stolen, 100*float64(st.Stolen)/float64(jobs), rep.Drain.JobsPerSec)
}
