package analysis

import (
	"testing"
)

// TestE3GoldenValues pins the exact deterministic outcomes of the Figure 3
// reproduction: the adversarial makespan must equal the paper's formula
// m·K·PK + m·PK − m and the benign makespan the closed-form optimum
// K + m·PK − 1, cell for cell. Any engine or scheduler regression that
// perturbs the adversarial dance breaks this test immediately.
func TestE3GoldenValues(t *testing.T) {
	tbl, err := RunE3(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Header: K Pmax m jobs Tadv paperWorst Tbenign T* ratio limit.
	type golden struct {
		k, p, m              string
		tAdv, tStar, tBenign string
	}
	want := map[[3]string][3]string{
		{"2", "2", "1"}: {"5", "3", "3"},
		{"2", "2", "2"}: {"10", "5", "5"},
		{"2", "2", "4"}: {"20", "9", "9"},
		{"2", "4", "1"}: {"11", "5", "5"},
		{"2", "4", "2"}: {"22", "9", "9"},
		{"2", "4", "4"}: {"44", "17", "17"},
		{"3", "2", "1"}: {"7", "4", "4"},
		{"3", "2", "2"}: {"14", "6", "6"},
		{"3", "2", "4"}: {"28", "10", "10"},
		{"3", "4", "1"}: {"15", "6", "6"},
		{"3", "4", "2"}: {"30", "10", "10"},
		{"3", "4", "4"}: {"60", "18", "18"},
	}
	seen := 0
	for _, row := range tbl.Rows {
		key := [3]string{row[0], row[1], row[2]}
		exp, ok := want[key]
		if !ok {
			continue
		}
		seen++
		if row[4] != exp[0] {
			t.Errorf("K=%s P=%s m=%s: adversarial makespan %s, want %s", key[0], key[1], key[2], row[4], exp[0])
		}
		if row[4] != row[5] {
			t.Errorf("K=%s P=%s m=%s: measured %s != paper formula %s", key[0], key[1], key[2], row[4], row[5])
		}
		if row[6] != exp[2] {
			t.Errorf("K=%s P=%s m=%s: benign makespan %s, want %s", key[0], key[1], key[2], row[6], exp[2])
		}
		if row[7] != exp[1] {
			t.Errorf("K=%s P=%s m=%s: closed-form %s, want %s", key[0], key[1], key[2], row[7], exp[1])
		}
	}
	if seen != len(want) {
		t.Errorf("matched %d golden rows, want %d", seen, len(want))
	}
}
