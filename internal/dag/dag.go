// Package dag implements the K-DAG job model from Section 2 of the paper:
// a parallel job is a directed acyclic graph whose vertices are unit-time
// tasks, each colored with one of K resource categories, and whose edges
// are precedence constraints. The package provides graph construction and
// validation, work/span/profile metrics, deterministic builders for common
// job shapes, the Figure 3 adversarial construction, and a runtime Instance
// type that unfolds a K-DAG dynamically so that schedulers only ever observe
// instantaneous per-category parallelism (non-clairvoyance).
package dag

import (
	"fmt"
	"sync/atomic"
)

// Category is a 1-based resource category index α ∈ {1, ..., K}.
// Category 1 might be general-purpose CPUs, category 2 vector units,
// category 3 I/O processors, and so on.
type Category int

// TaskID identifies a vertex within a single Graph. IDs are dense and
// assigned in insertion order starting from 0.
type TaskID int32

// Graph is an immutable-after-build K-DAG: a set of unit-time tasks, each
// belonging to one category, connected by precedence edges. The zero value
// is not usable; construct with New.
type Graph struct {
	name string
	k    int
	cats []Category
	succ [][]TaskID
	pred [][]TaskID
	// durs holds optional per-task durations (nil = all unit); see
	// durations.go.
	durs []int32
	// edge count, maintained incrementally.
	edges int
	// hmemo caches the static task heights (longest chain from each task),
	// shared read-only by Span, CriticalPath, every Instance of this graph,
	// and the CP pick policies. Mutators reset it; the atomic makes the
	// post-build read path safe under concurrent queries.
	hmemo atomic.Pointer[heightsResult]
}

// heightsResult is the cached outcome of one heights computation.
type heightsResult struct {
	h   []int32
	err error
}

// New returns an empty K-DAG for k resource categories. k must be ≥ 1.
func New(k int) *Graph {
	if k < 1 {
		panic(fmt.Sprintf("dag: New called with k=%d, need k ≥ 1", k))
	}
	return &Graph{k: k}
}

// Named sets a human-readable name used in error messages and traces and
// returns the graph for chaining.
func (g *Graph) Named(name string) *Graph {
	g.name = name
	return g
}

// Name returns the graph's name (possibly empty).
func (g *Graph) Name() string { return g.name }

// K returns the number of resource categories the graph was declared with.
func (g *Graph) K() int { return g.k }

// NumTasks returns the number of vertices.
func (g *Graph) NumTasks() int { return len(g.cats) }

// NumEdges returns the number of precedence edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddTask appends a new unit-time task of category c and returns its ID.
// It panics if c is outside [1, K]; task insertion is a programming-time
// construction step, so a malformed category is a caller bug.
func (g *Graph) AddTask(c Category) TaskID {
	if c < 1 || int(c) > g.k {
		panic(fmt.Sprintf("dag: AddTask category %d out of range [1,%d] in graph %q", c, g.k, g.name))
	}
	id := TaskID(len(g.cats))
	g.cats = append(g.cats, c)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.hmemo.Store(nil)
	return id
}

// AddTasks appends n tasks of category c and returns their IDs.
func (g *Graph) AddTasks(c Category, n int) []TaskID {
	ids := make([]TaskID, n)
	for i := range ids {
		ids[i] = g.AddTask(c)
	}
	return ids
}

// AddEdge records the precedence constraint u ≺ v (u must complete before v
// may start). Self-edges are rejected; duplicate edges are rejected because
// they always indicate a generator bug. Cycle detection is deferred to
// Validate, which checks the whole graph at once.
func (g *Graph) AddEdge(u, v TaskID) error {
	if u == v {
		return fmt.Errorf("dag: self edge %d in graph %q", u, g.name)
	}
	if err := g.checkID(u); err != nil {
		return err
	}
	if err := g.checkID(v); err != nil {
		return err
	}
	for _, w := range g.succ[u] {
		if w == v {
			return fmt.Errorf("dag: duplicate edge %d→%d in graph %q", u, v, g.name)
		}
	}
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	g.edges++
	g.hmemo.Store(nil)
	return nil
}

// MustEdge is AddEdge for deterministic builders where an edge error is a
// programming bug rather than a data error.
func (g *Graph) MustEdge(u, v TaskID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

func (g *Graph) checkID(id TaskID) error {
	if id < 0 || int(id) >= len(g.cats) {
		return fmt.Errorf("dag: task id %d out of range [0,%d) in graph %q", id, len(g.cats), g.name)
	}
	return nil
}

// Category returns the resource category of task id.
func (g *Graph) Category(id TaskID) Category { return g.cats[id] }

// Successors returns the tasks that directly depend on id. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Successors(id TaskID) []TaskID { return g.succ[id] }

// Predecessors returns the direct prerequisites of id. The returned slice
// is owned by the graph and must not be modified.
func (g *Graph) Predecessors(id TaskID) []TaskID { return g.pred[id] }

// InDegree returns the number of direct prerequisites of id.
func (g *Graph) InDegree(id TaskID) int { return len(g.pred[id]) }

// Sources returns all tasks with no prerequisites, in ID order.
func (g *Graph) Sources() []TaskID {
	var out []TaskID
	for id := range g.cats {
		if len(g.pred[id]) == 0 {
			out = append(out, TaskID(id))
		}
	}
	return out
}

// Sinks returns all tasks with no successors, in ID order.
func (g *Graph) Sinks() []TaskID {
	var out []TaskID
	for id := range g.cats {
		if len(g.succ[id]) == 0 {
			out = append(out, TaskID(id))
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{name: g.name, k: g.k, edges: g.edges}
	c.cats = append([]Category(nil), g.cats...)
	c.durs = append([]int32(nil), g.durs...)
	c.succ = make([][]TaskID, len(g.succ))
	c.pred = make([][]TaskID, len(g.pred))
	for i := range g.succ {
		if len(g.succ[i]) > 0 {
			c.succ[i] = append([]TaskID(nil), g.succ[i]...)
		}
		if len(g.pred[i]) > 0 {
			c.pred[i] = append([]TaskID(nil), g.pred[i]...)
		}
	}
	return c
}

// Validate checks structural invariants: every category within [1, K],
// predecessor/successor symmetry, and acyclicity. Builders in this package
// always produce valid graphs; Validate exists for graphs assembled by hand
// or decoded from external data.
func (g *Graph) Validate() error {
	if g.k < 1 {
		return fmt.Errorf("dag: graph %q has k=%d, need k ≥ 1", g.name, g.k)
	}
	for id, c := range g.cats {
		if c < 1 || int(c) > g.k {
			return fmt.Errorf("dag: graph %q task %d has category %d out of range [1,%d]", g.name, id, c, g.k)
		}
	}
	for u := range g.succ {
		for _, v := range g.succ[u] {
			if err := g.checkID(v); err != nil {
				return err
			}
			found := false
			for _, w := range g.pred[v] {
				if w == TaskID(u) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("dag: graph %q edge %d→%d missing reverse link", g.name, u, v)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(%q K=%d tasks=%d edges=%d)", g.name, g.k, g.NumTasks(), g.edges)
}
