package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"krad/internal/dag"
	"krad/internal/moldable"
	"krad/internal/profile"
	"krad/internal/replicate"
	"krad/internal/sim"
)

// PlacementKeyHeader is the request header carrying the client's shard
// affinity key. Under the "hash" placement policy, submissions with equal
// keys land on the same shard; other policies ignore it.
const PlacementKeyHeader = "X-Krad-Placement-Key"

// TenantHeader is the request header naming the submitting tenant's
// queue-tree leaf (e.g. "acme/ml"). With fairness enabled, the value
// resolves through the queue tree and the submission is gated by the
// tenant's fair share; over-quota submissions get 429 with Retry-After.
// Absent or empty means the default leaf. With fairness off the header
// is ignored.
const TenantHeader = "X-Krad-Tenant"

// submitRequest is the POST /v1/jobs body: exactly one job description —
// a K-DAG in the internal/dag JSON encoding (graph), a moldable-task
// spec (mold), or a rigid profile spec (rigid) — plus an optional
// absolute virtual release time (0 or omitted means "now"). Rigid is a
// value, not a pointer, so the pooled-decode path (submitScratch) stays
// allocation-free for the profile family that dominates high-rate
// replay traffic; presence is Procs or Steps being nonzero.
type submitRequest struct {
	Graph   *dag.Graph        `json:"graph,omitempty"`
	Mold    *moldable.Spec    `json:"mold,omitempty"`
	Rigid   profile.RigidSpec `json:"rigid,omitzero"`
	Release int64             `json:"release,omitempty"`
}

// hasRigid reports whether the rigid field was populated. A rigid job
// needs Procs ≥ 1 and Steps ≥ 1 to validate, so an all-zero value can
// only mean "absent".
func (r *submitRequest) hasRigid() bool {
	return r.Rigid.Procs != 0 || r.Rigid.Steps != 0
}

// spec validates the request body and builds the engine job spec.
// Moldable and rigid specs validate eagerly (moldable.FromSpec,
// profile.FromRigidSpec) so malformed curves, edges and widths come back
// as located 400s, not 500s at admission.
func (r *submitRequest) spec() (sim.JobSpec, error) {
	payloads := 0
	for _, present := range [...]bool{r.Graph != nil, r.Mold != nil, r.hasRigid()} {
		if present {
			payloads++
		}
	}
	switch {
	case payloads > 1:
		return sim.JobSpec{}, fmt.Errorf("job has %d of graph/mold/rigid; submit exactly one", payloads)
	case r.Mold != nil:
		job, err := moldable.FromSpec(*r.Mold)
		if err != nil {
			return sim.JobSpec{}, err
		}
		return sim.JobSpec{Source: job, Release: r.Release}, nil
	case r.hasRigid():
		job, err := profile.FromRigidSpec(r.Rigid)
		if err != nil {
			return sim.JobSpec{}, err
		}
		return sim.JobSpec{Source: job, Release: r.Release}, nil
	case r.Graph != nil:
		return sim.JobSpec{Graph: r.Graph, Release: r.Release}, nil
	default:
		return sim.JobSpec{}, fmt.Errorf("job has no graph")
	}
}

// batchRequest is the POST /v1/jobs/batch body: a burst of jobs admitted
// all-or-nothing on one shard under a single engine lock acquisition.
type batchRequest struct {
	Jobs []submitRequest `json:"jobs"`
}

// retryAfterSeconds derives the base 503 Retry-After value from the step
// pace: one virtual step of queue drain, ceiled to whole seconds, never
// below the 1-second floor the header's resolution imposes.
func retryAfterSeconds(stepEvery time.Duration) int64 {
	secs := int64(math.Ceil(stepEvery.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// retryAfterValue returns the next Retry-After header value: the
// step-pace base plus a deterministic 0–3 s round-robin jitter, so a
// synchronized burst of shed clients re-arrives spread over four seconds
// instead of as a second thundering herd.
func (s *Service) retryAfterValue() string {
	return s.retryVals[s.retrySeq.Add(1)&3]
}

// jobJSON is the wire form of a job's lifecycle status.
type jobJSON struct {
	ID          int    `json:"id"`
	State       string `json:"state"`
	Family      string `json:"family,omitempty"`
	Release     int64  `json:"release"`
	Completion  int64  `json:"completion,omitempty"`
	Response    int64  `json:"response,omitempty"`
	CancelledAt int64  `json:"cancelled_at,omitempty"`
	Work        []int  `json:"work"`
	Span        int    `json:"span"`
}

func toJobJSON(st sim.JobStatus) jobJSON {
	j := jobJSON{
		ID:          st.ID,
		State:       st.Phase.String(),
		Release:     st.Release,
		Completion:  st.Completion,
		Response:    st.Response(),
		CancelledAt: st.CancelledAt,
		Work:        st.Work,
		Span:        st.Span,
	}
	if st.Family != sim.FamilyUnknown {
		j.Family = st.Family.String()
	}
	return j
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs       submit a dag-encoded job      → 201 {id, release, shard}
//	POST   /v1/jobs/batch submit a burst all-or-nothing → 201 {ids, shard}
//	GET    /v1/jobs/{id}  job lifecycle status          → 200 jobJSON
//	DELETE /v1/jobs/{id}  cancel a pending/active job   → 200 jobJSON
//	GET    /v1/events     SSE stream of step events (all shards)
//	GET    /metrics       Prometheus text exposition
//	GET    /healthz       liveness + service stats (always 200 while the
//	                      process serves: draining and degraded are alive)
//	GET    /readyz        readiness: 200 when accepting work, 503 while
//	                      draining or journal-degraded
//
// Submissions honor the X-Krad-Placement-Key header (see
// PlacementKeyHeader) and, with fairness enabled, the X-Krad-Tenant
// header (see TenantHeader; over-quota tenants get 429 + Retry-After).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs/batch", s.handleSubmitBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("POST /v1/promote", s.handlePromote)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Submit body bounds. Declared requests larger than these are rejected
// with 413 off the Content-Length header alone — before a byte of body is
// buffered — and chunked bodies are cut off at the same bound mid-read.
const (
	maxSubmitBody = 8 << 20
	maxBatchBody  = 64 << 20
)

// submitScratch is the pooled per-request decode state of the submit
// path: the raw-body buffer, the request structs json.Unmarshal fills,
// and the spec slice handed to admission. Steady-state submissions touch
// only recycled memory here; what still allocates per request is the
// decoded payload itself (graph/mold pointers, work vectors) plus a small
// fixed constant in the json and net/http machinery — pinned by
// TestSubmitAllocsPinned.
//
// json.Unmarshal merges into existing memory rather than resetting it, so
// release zeroes req and every batch slot across the slice's full
// capacity before the scratch re-enters the pool; zeroing there also
// drops payload pointers (so pooled scratch doesn't pin decoded
// graphs past the request) while keeping the flat buffers.
type submitScratch struct {
	buf   []byte
	req   submitRequest
	batch batchRequest
	specs []sim.JobSpec
}

var submitPool = sync.Pool{New: func() any { return new(submitScratch) }}

func (sc *submitScratch) release() {
	sc.req = submitRequest{}
	jobs := sc.batch.Jobs[:cap(sc.batch.Jobs)]
	for i := range jobs {
		jobs[i] = submitRequest{}
	}
	sc.batch.Jobs = jobs[:0]
	for i := range sc.specs {
		sc.specs[i] = sim.JobSpec{}
	}
	sc.specs = sc.specs[:0]
	submitPool.Put(sc)
}

// readBody buffers the request body into the scratch buffer, enforcing
// limit. It reports (nil, true) after writing the error response itself
// on oversized or unreadable bodies.
func (sc *submitScratch) readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	if r.ContentLength > limit {
		writeError(w, http.StatusRequestEntityTooLarge,
			"request body %d bytes exceeds the %d-byte bound", r.ContentLength, limit)
		return nil, true
	}
	if n := r.ContentLength; n > 0 && int64(cap(sc.buf)) < n {
		sc.buf = make([]byte, 0, n)
	}
	body := http.MaxBytesReader(w, r.Body, limit)
	buf := sc.buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			sc.buf = buf
			return buf, false
		}
		if err != nil {
			sc.buf = buf
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					"request body exceeds the %d-byte bound", limit)
			} else {
				writeError(w, http.StatusBadRequest, "reading request body: %v", err)
			}
			return nil, true
		}
	}
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sc := submitPool.Get().(*submitScratch)
	defer sc.release()
	body, done := sc.readBody(w, r, maxSubmitBody)
	if done {
		return
	}
	if err := json.Unmarshal(body, &sc.req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job JSON: %v", err)
		return
	}
	spec, err := sc.req.spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := s.SubmitTenant(r.Header.Get(PlacementKeyHeader), r.Header.Get(TenantHeader), spec)
	if !s.writeSubmitError(w, err) {
		return
	}
	st, _ := s.Job(id)
	writeJSON(w, http.StatusCreated, map[string]any{"id": id, "release": st.Release, "shard": ShardOf(id)})
}

func (s *Service) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	sc := submitPool.Get().(*submitScratch)
	defer sc.release()
	body, done := sc.readBody(w, r, maxBatchBody)
	if done {
		return
	}
	if err := json.Unmarshal(body, &sc.batch); err != nil {
		writeError(w, http.StatusBadRequest, "invalid batch JSON: %v", err)
		return
	}
	if len(sc.batch.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	specs := sc.specs[:0]
	for i := range sc.batch.Jobs {
		spec, err := sc.batch.Jobs[i].spec()
		if err != nil {
			writeError(w, http.StatusBadRequest, "batch job %d: %v", i, err)
			return
		}
		specs = append(specs, spec)
	}
	sc.specs = specs
	ids, err := s.SubmitBatchTenant(r.Header.Get(PlacementKeyHeader), r.Header.Get(TenantHeader), specs)
	if !s.writeSubmitError(w, err) {
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"ids": ids, "shard": ShardOf(ids[0])})
}

// writeSubmitError maps admission errors onto HTTP responses, reporting
// whether the submission succeeded. Queue-full responses carry a
// Retry-After derived from the step pace, so pacing-aware clients back
// off for at least one virtual step of drain.
func (s *Service) writeSubmitError(w http.ResponseWriter, err error) bool {
	switch {
	case errors.Is(err, ErrOverQuota):
		// 429, not 503: the service has capacity, this tenant exhausted its
		// fair share of it. Retry-After signals when decay/drain may free
		// quota, and distinguishes per-tenant shedding from fleet-wide
		// backpressure for pacing-aware clients.
		w.Header().Set("Retry-After", s.retryAfterValue())
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return false
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDegraded):
		w.Header().Set("Retry-After", s.retryAfterValue())
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return false
	case errors.Is(err, replicate.ErrFenced):
		// 409, not 503: retrying this daemon can never succeed — a
		// follower holds a higher epoch and this primary is permanently
		// deposed. Clients must re-resolve to the promoted follower.
		writeError(w, http.StatusConflict, "%v", err)
		return false
	case errors.Is(err, replicate.ErrLeaseExpired), errors.Is(err, ErrFollower):
		// Transient (lease heals when acks resume) or wrong-node
		// (follower): 503 tells load balancers to route elsewhere.
		w.Header().Set("Retry-After", s.retryAfterValue())
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return false
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return false
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return false
	}
	return true
}

// jobID parses the {id} path segment.
func jobID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	st, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	writeJSON(w, http.StatusOK, toJobJSON(st))
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	if _, ok := s.Job(id); !ok {
		writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	if err := s.Cancel(id); err != nil {
		if errors.Is(err, ErrDegraded) || errors.Is(err, ErrFollower) || errors.Is(err, replicate.ErrLeaseExpired) {
			w.Header().Set("Retry-After", s.retryAfterValue())
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	st, _ := s.Job(id)
	writeJSON(w, http.StatusOK, toJobJSON(st))
}

// handleEvents streams step events as Server-Sent Events until the client
// disconnects or the service shuts down. Each event is
//
//	event: step
//	data: {"step":..,"executed":[..],...}
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, cancel := s.Subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: step\ndata: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handlePromote flips a standby follower into the serving primary: the
// registered promotion callback (replicate.Receiver.Promote) bumps the
// epoch past everything seen, fences the old primary's stream, and
// starts this daemon's step loops. Idempotent; 409 on a daemon that was
// never configured as a follower.
func (s *Service) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	f := s.promoteFn
	s.mu.Unlock()
	if f == nil {
		writeError(w, http.StatusConflict, "not a replication follower: nothing to promote")
		return
	}
	epoch := f()
	writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "epoch": epoch})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}

// handleHealthz is liveness: always 200 while the process can serve it.
// Draining and journal-degraded states are reported in the body but are
// not failures — the process is alive and finishing in-flight work.
// Orchestrators that restart on failed liveness must not restart a
// draining daemon; readiness (below) is what gates traffic.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	status := "ok"
	if err := s.Err(); err != nil {
		status = "degraded: " + err.Error()
	} else if st.Journal != nil && st.Journal.Degraded > 0 {
		status = "degraded: journal write failure"
	} else if st.Draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "stats": st})
}

// handleReadyz is readiness: 200 only when the service should receive
// traffic, 503 (with a reason) while draining or journal-degraded.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if ok, reason := s.Ready(); !ok {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unavailable", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
