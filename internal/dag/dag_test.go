package dag

import (
	"strings"
	"testing"
)

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAddTaskAssignsDenseIDs(t *testing.T) {
	g := New(2)
	for i := 0; i < 5; i++ {
		id := g.AddTask(1)
		if int(id) != i {
			t.Fatalf("task %d got ID %d", i, id)
		}
	}
	if g.NumTasks() != 5 {
		t.Fatalf("NumTasks = %d, want 5", g.NumTasks())
	}
}

func TestAddTaskPanicsOnBadCategory(t *testing.T) {
	g := New(2)
	for _, c := range []Category{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddTask(%d) did not panic", c)
				}
			}()
			g.AddTask(c)
		}()
	}
}

func TestAddEdgeRejectsSelfAndDuplicates(t *testing.T) {
	g := New(1)
	a, b := g.AddTask(1), g.AddTask(1)
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self edge accepted")
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(a, b); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(a, TaskID(99)); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestCategoryAndAdjacency(t *testing.T) {
	g := New(3)
	a := g.AddTask(1)
	b := g.AddTask(2)
	c := g.AddTask(3)
	g.MustEdge(a, b)
	g.MustEdge(a, c)
	g.MustEdge(b, c)
	if g.Category(a) != 1 || g.Category(b) != 2 || g.Category(c) != 3 {
		t.Error("categories not preserved")
	}
	if len(g.Successors(a)) != 2 {
		t.Errorf("a has %d successors, want 2", len(g.Successors(a)))
	}
	if len(g.Predecessors(c)) != 2 {
		t.Errorf("c has %d predecessors, want 2", len(g.Predecessors(c)))
	}
	if g.InDegree(a) != 0 || g.InDegree(c) != 2 {
		t.Error("in-degrees wrong")
	}
	if got := g.Sources(); len(got) != 1 || got[0] != a {
		t.Errorf("Sources = %v, want [%d]", got, a)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != c {
		t.Errorf("Sinks = %v, want [%d]", got, c)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	g := New(1)
	a, b, c := g.AddTask(1), g.AddTask(1), g.AddTask(1)
	g.MustEdge(a, b)
	g.MustEdge(b, c)
	g.MustEdge(c, a)
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Validate = %v, want cycle error", err)
	}
}

func TestValidateAcceptsBuilders(t *testing.T) {
	graphs := []*Graph{
		UniformChain(1, 10, 1),
		RoundRobinChain(3, 12),
		ForkJoin(2, 8, 1, 2, 1),
		Layered(3, []LayerSpec{{4, 1}, {6, 2}, {2, 3}}, true),
		Layered(3, []LayerSpec{{4, 1}, {6, 2}, {2, 3}}, false),
		MapReduce(2, 6, 3, 1, 1, 2, 2),
		Pipeline(2, 3, 5, func(s int) Category { return Category(s%2 + 1) }),
		Singleton(4, 3),
		Figure1(),
	}
	for _, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("%v: %v", g, err)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := RoundRobinChain(2, 6)
	c := g.Clone()
	if c.NumTasks() != g.NumTasks() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone differs in size")
	}
	// Mutating the clone must not affect the original.
	x := c.AddTask(1)
	c.MustEdge(TaskID(0), x)
	if g.NumTasks() == c.NumTasks() {
		t.Error("AddTask on clone affected original size comparison")
	}
	if len(g.Successors(0)) == len(c.Successors(0)) {
		t.Error("clone shares successor slices with original")
	}
}

func TestTopoOrderIsTopological(t *testing.T) {
	g := MapReduce(2, 5, 3, 1, 1, 2, 2)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	if len(pos) != g.NumTasks() {
		t.Fatalf("order has %d unique tasks, want %d", len(pos), g.NumTasks())
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, v := range g.Successors(TaskID(u)) {
			if pos[TaskID(u)] >= pos[v] {
				t.Fatalf("edge %d→%d out of order", u, v)
			}
		}
	}
}

func TestLevelsMatchSpan(t *testing.T) {
	cases := []struct {
		g    *Graph
		span int
	}{
		{UniformChain(1, 7, 1), 7},
		{ForkJoin(2, 5, 1, 2, 1), 3},
		{Layered(2, []LayerSpec{{3, 1}, {3, 2}, {3, 1}, {3, 2}}, true), 4},
		{Singleton(1, 1), 1},
		{Figure1(), 5},
	}
	for _, c := range cases {
		levels, err := c.g.Levels()
		if err != nil {
			t.Fatal(err)
		}
		if len(levels) != c.span {
			t.Errorf("%v: %d levels, want %d", c.g, len(levels), c.span)
		}
		if c.g.Span() != c.span {
			t.Errorf("%v: Span = %d, want %d", c.g, c.g.Span(), c.span)
		}
		total := 0
		for _, l := range levels {
			total += len(l)
		}
		if total != c.g.NumTasks() {
			t.Errorf("%v: levels cover %d tasks, want %d", c.g, total, c.g.NumTasks())
		}
	}
}

func TestEmptyGraphMetrics(t *testing.T) {
	g := New(2)
	if g.Span() != 0 {
		t.Errorf("empty Span = %d", g.Span())
	}
	if g.CriticalPath() != nil {
		t.Error("empty CriticalPath not nil")
	}
	if g.TotalWork() != 0 {
		t.Error("empty TotalWork not 0")
	}
}
