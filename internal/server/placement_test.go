package server

import "testing"

// TestLeastLoadedTieBreak pins the deterministic tie-break: among
// equally loaded shards, the lowest index wins. Journal replay and
// follower rebuilds depend on placement being a pure function of the
// loads vector, so a "random victim among ties" change would be a
// regression even though it looks harmless.
func TestLeastLoadedTieBreak(t *testing.T) {
	p, err := NewPlacement(PlaceLeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		loads []int
		want  int
	}{
		{"single", []int{5}, 0},
		{"all-zero", []int{0, 0, 0, 0}, 0},
		{"all-equal", []int{7, 7, 7}, 0},
		{"distinct-min-last", []int{3, 2, 1}, 2},
		{"distinct-min-first", []int{1, 2, 3}, 0},
		{"tie-in-middle", []int{5, 2, 2, 4}, 1},
		{"tie-at-ends", []int{1, 3, 3, 1}, 0},
		{"later-strictly-lower-wins", []int{2, 2, 1}, 2},
		{"negative-loads", []int{0, -1, -1}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 3; i++ { // stateless: repeated picks agree
				if got := p.Pick("", tc.loads); got != tc.want {
					t.Fatalf("Pick(%v) = %d, want %d", tc.loads, got, tc.want)
				}
			}
		})
	}
}
