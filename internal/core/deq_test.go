package core

import (
	"testing"
)

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestDeqEmptyAndZeroProcessors(t *testing.T) {
	if got := Deq(nil, 5, 0); len(got) != 0 {
		t.Errorf("Deq(nil) = %v", got)
	}
	got := Deq([]int{3, 4}, 0, 0)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("Deq with p=0 = %v", got)
	}
}

func TestDeqAllSatisfied(t *testing.T) {
	// Total desire below capacity: everyone gets exactly their desire.
	got := Deq([]int{1, 2, 3}, 10, 0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Deq = %v, want %v", got, want)
		}
	}
}

func TestDeqAllDeprivedEqualShares(t *testing.T) {
	// Everyone wants more than the fair share: equal split.
	got := Deq([]int{10, 10, 10, 10}, 8, 0)
	for i, a := range got {
		if a != 2 {
			t.Fatalf("job %d got %d, want 2 (allot %v)", i, a, got)
		}
	}
}

func TestDeqRemainderSpreadWithinOne(t *testing.T) {
	got := Deq([]int{10, 10, 10}, 8, 0)
	if sum(got) != 8 {
		t.Fatalf("sum %d, want 8", sum(got))
	}
	min, max := got[0], got[0]
	for _, a := range got {
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	if max-min > 1 {
		t.Errorf("deprived allotments differ by more than one: %v", got)
	}
}

func TestDeqRotationMovesRemainder(t *testing.T) {
	a := Deq([]int{5, 5, 5}, 7, 0)
	b := Deq([]int{5, 5, 5}, 7, 1)
	if sum(a) != 7 || sum(b) != 7 {
		t.Fatal("sums wrong")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Errorf("rotation had no effect: %v vs %v", a, b)
	}
}

func TestDeqRecursiveRedistribution(t *testing.T) {
	// Figure 2 semantics: small jobs get their desire, the freed capacity
	// goes to the big jobs. desires {1, 9, 9}, p=9: fair 3 → job 0
	// satisfied (1), remaining 8 split 4/4.
	got := Deq([]int{1, 9, 9}, 9, 0)
	if got[0] != 1 || got[1] != 4 || got[2] != 4 {
		t.Errorf("Deq = %v, want [1 4 4]", got)
	}
}

func TestDeqCascadingRecursion(t *testing.T) {
	// desires {1, 2, 50, 50}, p=12: fair 3 → jobs 0,1 satisfied (3 used),
	// 9 left for two jobs: fair 4 → both deprived → 5 and 4 (rot 0).
	got := Deq([]int{1, 2, 50, 50}, 12, 0)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("satisfied jobs wrong: %v", got)
	}
	if got[2]+got[3] != 9 {
		t.Fatalf("deprived jobs got %d+%d, want 9 total", got[2], got[3])
	}
	if d := got[2] - got[3]; d < -1 || d > 1 {
		t.Errorf("deprived not within one: %v", got)
	}
}

func TestDeqOverloadDegeneratesToPartialService(t *testing.T) {
	// More jobs than processors: p of the jobs get one processor each.
	desires := []int{1, 1, 1, 1, 1, 1}
	got := Deq(desires, 3, 0)
	if sum(got) != 3 {
		t.Fatalf("sum %d, want 3", sum(got))
	}
	for i, a := range got {
		if a != 0 && a != 1 {
			t.Errorf("job %d got %d", i, a)
		}
	}
}

func TestDeqNeverExceedsDesire(t *testing.T) {
	desires := []int{2, 1, 7, 3}
	got := Deq(desires, 100, 0)
	for i := range desires {
		if got[i] != desires[i] {
			t.Errorf("job %d got %d, want full desire %d", i, got[i], desires[i])
		}
	}
}

func TestDeqNegativeRotation(t *testing.T) {
	// rot may be any int (it is derived from a time step); negative values
	// must not panic or misallocate.
	got := Deq([]int{5, 5, 5}, 7, -4)
	if sum(got) != 7 {
		t.Errorf("sum %d, want 7", sum(got))
	}
}
