// Command kradd runs the online scheduler service: a long-lived daemon
// around internal/server that admits jobs over HTTP while the virtual
// clock runs, streams per-step events, and exposes Prometheus metrics.
//
// Endpoints (see internal/server for the wire formats):
//
//	POST   /v1/jobs       submit a dag-encoded job          → 201 {id, release, shard}
//	POST   /v1/jobs/batch submit many jobs atomically       → 201 {ids, shard}
//	GET    /v1/jobs/{id}  job lifecycle status
//	DELETE /v1/jobs/{id}  cancel a pending/active job
//	GET    /v1/events     SSE stream of step events (all shards)
//	GET    /metrics       Prometheus text exposition (fleet + per-shard)
//	GET    /healthz       liveness + aggregated service stats
//
// Usage:
//
//	kradd -addr :8080 -k 3 -caps 4,4,4 -sched k-rad -step 50ms -queue 256
//	kradd -addr :8080 -shards 4 -placement hash -queue 1024
//
// With -shards N the daemon runs N independent simulation engines behind
// one admission front-end; -placement picks how submissions are routed
// (round-robin, hash on the X-Krad-Placement-Key header, least-loaded).
// -caps and -queue keep their meaning: caps describe each shard's
// machine, and the queue bound is shared across the fleet.
//
// With -step 0 the clock free-runs: steps execute as fast as the hardware
// allows whenever work is queued, so submitted jobs drain immediately. A
// positive -step paces the virtual clock against wall time, which is what
// makes the event stream watchable.
//
// SIGINT/SIGTERM trigger a graceful drain: admission stops, in-flight
// jobs run to completion (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"krad/internal/analysis"
	"krad/internal/dag"
	"krad/internal/sched"
	"krad/internal/server"
	"krad/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kradd: ")
	var (
		addrFlag  = flag.String("addr", ":8080", "HTTP listen address")
		kFlag     = flag.Int("k", 3, "number of resource categories")
		capsFlag  = flag.String("caps", "4,4,4", "per-category processor counts, comma-separated")
		schedFlag = flag.String("sched", "k-rad", fmt.Sprintf("scheduler: one of %v", analysis.SchedulerNames()))
		pickFlag  = flag.String("pick", "fifo", "task pick policy: fifo, lifo, random, cp-first, cp-last")
		seedFlag  = flag.Int64("seed", 1, "scheduler/pick-policy seed")
		stepFlag  = flag.Duration("step", 0, "wall-clock duration of one virtual step (0 = free-running)")
		queueFlag = flag.Int("queue", 256, "admission bound: max in-flight (pending + active) jobs")
		bufFlag   = flag.Int("event-buffer", 64, "per-subscriber event channel capacity")
		drainFlag = flag.Duration("drain", 30*time.Second, "max time to drain in-flight jobs at shutdown")
		parFlag   = flag.Bool("parallel", false, "parallelize each step's execution phase")
		shardFlag = flag.Int("shards", 1, "number of independent engine shards")
		placeFlag = flag.String("placement", server.PlaceRoundRobin,
			"shard placement policy: round-robin, hash, least-loaded")
	)
	flag.Parse()

	caps, err := parseInts(*capsFlag)
	if err != nil || len(caps) != *kFlag {
		log.Fatalf("-caps must list exactly K=%d integers: %v", *kFlag, err)
	}
	scheduler, err := analysis.NewScheduler(*schedFlag, *kFlag)
	if err != nil {
		log.Fatal(err)
	}
	pick, err := parsePick(*pickFlag)
	if err != nil {
		log.Fatal(err)
	}

	svc, err := server.New(server.Config{
		Sim: sim.Config{
			K: *kFlag, Caps: caps, Scheduler: scheduler, Pick: pick,
			Seed: *seedFlag, ValidateAllotments: true, Parallel: *parFlag,
		},
		MaxInFlight:      *queueFlag,
		StepEvery:        *stepFlag,
		SubscriberBuffer: *bufFlag,
		Shards:           *shardFlag,
		Placement:        *placeFlag,
		// Each shard needs its own scheduler instance: K-RAD and the
		// clairvoyant variants carry per-engine state. The name and K
		// were validated above, so the factory cannot fail.
		NewScheduler: func() sched.Scheduler {
			s, _ := analysis.NewScheduler(*schedFlag, *kFlag)
			return s
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	svc.Start()

	srv := &http.Server{
		Addr:              *addrFlag,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("listening on %s (K=%d caps=%v sched=%s step=%v queue=%d shards=%d placement=%s)",
		*addrFlag, *kFlag, caps, *schedFlag, *stepFlag, *queueFlag, *shardFlag, *placeFlag)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining in-flight jobs (up to %v)", *drainFlag)
	drainCtx, stop := context.WithTimeout(context.Background(), *drainFlag)
	defer stop()
	// Close first so the drain happens while the HTTP surface still
	// answers status queries; then shut the listener down.
	if err := svc.Close(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Err(); err != nil {
		log.Fatalf("step loop failed: %v", err)
	}
	log.Print("bye")
	_ = os.Stdout.Sync()
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePick(s string) (dag.PickPolicy, error) {
	switch s {
	case "fifo":
		return dag.PickFIFO, nil
	case "lifo":
		return dag.PickLIFO, nil
	case "random":
		return dag.PickRandom, nil
	case "cp-first":
		return dag.PickCPFirst, nil
	case "cp-last":
		return dag.PickCPLast, nil
	}
	return 0, fmt.Errorf("unknown pick policy %q", s)
}
