package server

import (
	"math"
	"testing"
)

// TestHistogramQuantile is the table-driven contract for the test-support
// quantile: empty, single-bucket, boundary, and overflow(+Inf)-bucket
// behavior.
func TestHistogramQuantile(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		observe []float64
		q       float64
		want    float64
	}{
		{"empty histogram", []float64{1, 2, 4}, nil, 0.5, 0},
		{"empty histogram q=1", []float64{1, 2, 4}, nil, 1, 0},
		{"single bucket", []float64{10}, []float64{3, 4, 5}, 0.5, 10},
		{"single bucket q=0", []float64{10}, []float64{3}, 0, 10},
		{"all in first bucket", []float64{1, 2, 4}, []float64{0.5, 1, 1}, 0.99, 1},
		{"median on boundary", []float64{1, 2, 4}, []float64{1, 2, 2, 4}, 0.5, 2},
		{"upper quantile", []float64{1, 2, 4}, []float64{1, 1, 1, 3}, 0.9, 4},
		{"overflow bucket", []float64{1, 2, 4}, []float64{100}, 0.5, math.Inf(1)},
		{"overflow tail only at q=1", []float64{1, 2, 4}, []float64{1, 1, 1, 99}, 0.75, 1},
		{"q=1 reaches overflow", []float64{1, 2, 4}, []float64{1, 1, 1, 99}, 1, math.Inf(1)},
		{"no bounds at all", nil, []float64{7}, 0.5, math.Inf(1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newHistogram(c.bounds)
			for _, v := range c.observe {
				h.observe(v)
			}
			got := h.quantile(c.q)
			if got != c.want && !(math.IsInf(got, 1) && math.IsInf(c.want, 1)) {
				t.Errorf("quantile(%g) = %g, want %g", c.q, got, c.want)
			}
		})
	}
}

// TestHistogramMergeMatchesOracle checks the cross-shard merge against a
// single histogram observing every sample directly: identical buckets,
// count and sum — the merge is exact, not approximate.
func TestHistogramMergeMatchesOracle(t *testing.T) {
	shardSamples := [][]float64{
		{1, 2, 3, 1000},
		{0.5, 8, 8, 8, 40000}, // includes an overflow observation
		{},                    // an idle shard contributes nothing
		{7, 7, 7},
	}
	oracle := newHistogram(responseBuckets())
	merged := newHistogram(responseBuckets())
	for _, samples := range shardSamples {
		sh := newHistogram(responseBuckets())
		for _, v := range samples {
			sh.observe(v)
			oracle.observe(v)
		}
		merged.merge(sh)
	}
	if merged.count != oracle.count || merged.sum != oracle.sum {
		t.Errorf("merged count=%d sum=%g, oracle count=%d sum=%g",
			merged.count, merged.sum, oracle.count, oracle.sum)
	}
	for i := range oracle.counts {
		if merged.counts[i] != oracle.counts[i] {
			t.Errorf("bucket %d: merged %d, oracle %d", i, merged.counts[i], oracle.counts[i])
		}
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		if m, o := merged.quantile(q), oracle.quantile(q); m != o && !(math.IsInf(m, 1) && math.IsInf(o, 1)) {
			t.Errorf("quantile(%g): merged %g, oracle %g", q, m, o)
		}
	}
}
