package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"krad/internal/dag"
)

// startHTTP spins up a free-running service behind an httptest server.
func startHTTP(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	return startHTTPClock(t, cfg, true)
}

// startHTTPClock optionally leaves the step loop stopped, freezing the
// virtual clock so pending-job states are stable for assertions.
func startHTTPClock(t *testing.T, cfg Config, run bool) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run {
		svc.Start()
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	})
	return svc, ts
}

func postJob(t *testing.T, url string, g *dag.Graph) (int, *http.Response) {
	t.Helper()
	body, err := json.Marshal(submitRequest{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return -1, resp
	}
	var out struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID, resp
}

func getJob(t *testing.T, url string, id int) jobJSON {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", url, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %d: status %d", id, resp.StatusCode)
	}
	var st jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// sseReader collects step events from GET /v1/events until the stream
// closes or stop is called.
type sseReader struct {
	mu        sync.Mutex
	events    int
	completed map[int]bool
	stop      func()
	done      chan struct{}
}

func streamEvents(t *testing.T, url string) *sseReader {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/events", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		cancel()
		t.Fatalf("events content-type %q", ct)
	}
	r := &sseReader{completed: make(map[int]bool), stop: cancel, done: make(chan struct{})}
	go func() {
		defer close(r.done)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				continue
			}
			r.mu.Lock()
			r.events++
			for _, id := range ev.Completed {
				r.completed[id] = true
			}
			r.mu.Unlock()
		}
	}()
	return r
}

func (r *sseReader) snapshot() (events int, completed map[int]bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := make(map[int]bool, len(r.completed))
	for k := range r.completed {
		m[k] = true
	}
	return r.events, m
}

// TestHTTPEndToEnd is the acceptance check: submit ≥ 10 jobs against a
// live server, stream events, and verify all jobs complete with
// consistent response times.
func TestHTTPEndToEnd(t *testing.T) {
	cfg := testConfig(3, 2, 2, 2)
	cfg.SubscriberBuffer = 1 << 14 // no drops: the test audits the stream
	svc, ts := startHTTP(t, cfg)

	events := streamEvents(t, ts.URL)
	defer events.stop()

	graphs := []*dag.Graph{
		dag.RoundRobinChain(3, 9),
		dag.ForkJoin(3, 5, 1, 2, 3),
		dag.UniformChain(3, 6, 2),
		dag.ForkJoin(3, 4, 2, 1, 2),
		dag.RoundRobinChain(3, 5),
		dag.UniformChain(3, 4, 1),
		dag.ForkJoin(3, 6, 3, 3, 3),
		dag.RoundRobinChain(3, 7),
		dag.UniformChain(3, 5, 3),
		dag.ForkJoin(3, 8, 1, 1, 1),
		dag.RoundRobinChain(3, 11),
		dag.Singleton(3, 2),
	}
	ids := make([]int, len(graphs))
	for i, g := range graphs {
		id, resp := postJob(t, ts.URL, g)
		if id < 0 {
			t.Fatalf("job %d rejected: status %d", i, resp.StatusCode)
		}
		ids[i] = id
	}

	waitFor(t, "all jobs complete", func() bool {
		return svc.Stats().Completed == int64(len(graphs))
	})

	caps := []int{2, 2, 2}
	for i, id := range ids {
		st := getJob(t, ts.URL, id)
		if st.State != "done" {
			t.Fatalf("job %d state %q", id, st.State)
		}
		if st.Response != st.Completion-st.Release {
			t.Errorf("job %d: response %d ≠ completion %d − release %d", id, st.Response, st.Completion, st.Release)
		}
		// Response can never beat the job's solo lower bound.
		solo := int64(st.Span)
		for a, w := range st.Work {
			if v := int64((w + caps[a] - 1) / caps[a]); v > solo {
				solo = v
			}
		}
		if st.Response < solo {
			t.Errorf("job %d (graph %d): response %d below solo bound %d", id, i, st.Response, solo)
		}
	}

	// The event stream saw every completion.
	waitFor(t, "stream catches up", func() bool {
		_, completed := events.snapshot()
		for _, id := range ids {
			if !completed[id] {
				return false
			}
		}
		return true
	})
	n, _ := events.snapshot()
	if n == 0 {
		t.Error("no step events streamed")
	}

	// Metrics expose the run.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		fmt.Sprintf("krad_jobs_completed_total %d", len(graphs)),
		fmt.Sprintf("krad_jobs_submitted_total %d", len(graphs)),
		fmt.Sprintf("krad_response_steps_count %d", len(graphs)),
		"krad_steps_total ",
		`krad_utilization{category="3"}`,
		`krad_response_steps_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	// Healthz reports ok with matching counters.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Stats.Completed != int64(len(graphs)) {
		t.Errorf("healthz %+v", health)
	}
}

// TestHTTPConcurrentSubmissions hammers POST /v1/jobs from 8 goroutines
// while the step loop runs (the -race acceptance check). Rejected
// submissions (backpressure) are retried until admitted.
func TestHTTPConcurrentSubmissions(t *testing.T) {
	cfg := testConfig(2, 2, 2)
	cfg.MaxInFlight = 32 // small enough that backpressure actually fires
	svc, ts := startHTTP(t, cfg)

	events := streamEvents(t, ts.URL)
	defer events.stop()

	const workers = 8
	const perWorker = 15
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < perWorker; i++ {
				body, _ := json.Marshal(submitRequest{Graph: dag.ForkJoin(2, 3, 1, 2, 1)})
				for attempt := 0; ; attempt++ {
					resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusCreated {
						break
					}
					if resp.StatusCode != http.StatusServiceUnavailable {
						errs <- fmt.Errorf("worker %d job %d: status %d", w, i, resp.StatusCode)
						return
					}
					if attempt > 10000 {
						errs <- fmt.Errorf("worker %d job %d: starved by backpressure", w, i)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	waitFor(t, "all concurrent jobs complete", func() bool {
		return svc.Stats().Completed == workers*perWorker
	})
	st := svc.Stats()
	if st.Submitted != workers*perWorker {
		t.Errorf("submitted %d, want %d", st.Submitted, workers*perWorker)
	}
	if st.Response.N != workers*perWorker || st.Response.Min < 1 {
		t.Errorf("response summary %+v", st.Response)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	// Clock frozen: the far-future job below must stay pending.
	_, ts := startHTTPClock(t, testConfig(2, 1, 1), false)

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := post("{not json"); got != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", got)
	}
	if got := post(`{"release": 3}`); got != http.StatusBadRequest {
		t.Errorf("graphless job: status %d", got)
	}
	// K mismatch: the engine rejects a 3-category job on a 2-category machine.
	body, _ := json.Marshal(submitRequest{Graph: dag.Singleton(3, 1)})
	if got := post(string(body)); got != http.StatusBadRequest {
		t.Errorf("K-mismatched job: status %d", got)
	}

	if resp, _ := http.Get(ts.URL + "/v1/jobs/999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/banana"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric id: status %d", resp.StatusCode)
	}

	del := func(id string) int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := del("999"); got != http.StatusNotFound {
		t.Errorf("cancel unknown: status %d", got)
	}

	// Cancel flow: a far-future job can be cancelled once, then conflicts.
	body, _ = json.Marshal(submitRequest{Graph: dag.Singleton(2, 1), Release: 1 << 40})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID int `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	idStr := fmt.Sprint(created.ID)
	if got := del(idStr); got != http.StatusOK {
		t.Errorf("cancel pending: status %d", got)
	}
	if got := del(idStr); got != http.StatusConflict {
		t.Errorf("double cancel: status %d", got)
	}
	st := getJob(t, ts.URL, created.ID)
	if st.State != "cancelled" {
		t.Errorf("state %q after cancel", st.State)
	}
}
