// Package analysis turns simulation runs into the paper's claims: it
// provides checkers for each theorem's bound, the experiment suite E1–E10
// described in DESIGN.md, and plain-text/markdown table rendering used by
// cmd/kradbench to regenerate EXPERIMENTS.md.
package analysis

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: a titled grid of cells plus free-form
// notes (expected shape, caveats, pass/fail summary).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown writes the table as a GitHub-flavored markdown section.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	return b.String()
}
