package journal

import (
	"fmt"

	"krad/internal/sim"
)

// Replay drives a freshly constructed engine through a journal's records,
// re-committing every mutation in its original order. Because the engine
// is deterministic — job runtime seeds derive from job IDs, scheduler
// state from the mutation sequence — the result is bit-identical to the
// engine that wrote the journal: same job IDs, same virtual clock, same
// per-job completions.
//
// Replay cross-checks what it can (assigned IDs against admit records,
// the clock against step records) and fails with a located error on the
// first divergence: a divergent replay means the journal belongs to a
// different configuration (scheduler, capacities, seed) and continuing
// would silently corrupt state.
func Replay(eng *sim.Engine, recs []Record) error {
	return ReplayObserved(eng, recs, nil)
}

// Observer receives replay side-effects the engine itself does not model.
// The server's fairness controller implements it to rebuild its fair-share
// ledger — usage accumulators, job→tenant map, per-tenant in-flight counts
// — bit-identically from the journal. A nil Observer makes ReplayObserved
// behave exactly like Replay. Fair records reach the observer via Fair;
// every hook runs after the engine committed the corresponding mutation,
// so the engine's clock (passed as now where it matters) is the same value
// the live server saw when it journaled the record.
type Observer interface {
	// Fair restores a journaled fair-share ledger (the head fair record, or
	// a snap record's attached ledger). An error aborts the replay — e.g.
	// the journal's half-life does not match the server's configuration.
	Fair(st FairState) error
	// Admitted runs after an admit/batch record replayed; ids are the
	// engine-assigned job IDs (cross-checked against rec.Base) and now is
	// the engine clock at admission.
	Admitted(rec Record, ids []int, now int64)
	// Cancelled runs after a cancel record replayed.
	Cancelled(id int)
	// Stepped runs after a step/steps record replayed; info.Completed lists
	// the jobs that finished during the batch.
	Stepped(info sim.StepInfo)
}

// StealObserver is an optional extension of Observer for servers that
// enable cross-shard work stealing. Replay detects it by type assertion, so
// existing Observer implementations keep working unchanged; a steal record
// replayed without a StealObserver still withdraws the jobs (the engine
// stays bit-identical) but the server-side bookkeeping — redirects, the
// outgoing-steal ledger — is silently skipped, so steal-enabled servers
// must implement it.
type StealObserver interface {
	// Stolen runs after a steal record replayed: the record's jobs were
	// withdrawn from this engine. specs are the withdrawn jobs' original
	// specs (specs[k] belongs to rec.IDs[k]), exactly what the thief
	// re-admitted; the slice is only valid during the call.
	Stolen(rec Record, specs []sim.JobSpec)
	// StealSnap restores a snap record's attached steal state (stolen-in
	// count, redirect map).
	StealSnap(st StealState)
}

// ReplayObserved is Replay with an Observer receiving the side-effects the
// engine does not model (fair-share ledger state). See Replay for the
// determinism and cross-checking contract.
func ReplayObserved(eng *sim.Engine, recs []Record, obs Observer) error {
	for i, rec := range recs {
		if err := replayOne(eng, rec, i, obs); err != nil {
			return err
		}
	}
	return nil
}

// Apply replays a single record through the engine (and observer) as one
// incremental unit of ReplayObserved — the seam a replication follower
// uses to track a live primary record by record. pos is the record's
// position in the logical record sequence since the engine's birth: snap
// and fair records are only valid at position 0, exactly as in a full
// replay. The determinism and cross-checking contract is Replay's.
func Apply(eng *sim.Engine, pos int, rec Record, obs Observer) error {
	return replayOne(eng, rec, pos, obs)
}

func replayOne(eng *sim.Engine, rec Record, i int, obs Observer) error {
	switch rec.Type {
	case TypeSnap:
		if i != 0 {
			return fmt.Errorf("journal: replay record %d: snapshot not at journal head", i)
		}
		if err := eng.Restore(*rec.Snap); err != nil {
			return fmt.Errorf("journal: replay record %d (snap): %w", i, err)
		}
		if rec.Fair != nil && obs != nil {
			if err := obs.Fair(*rec.Fair); err != nil {
				return fmt.Errorf("journal: replay record %d (snap): %w", i, err)
			}
		}
		if rec.Steal != nil {
			if so, ok := obs.(StealObserver); ok {
				so.StealSnap(*rec.Steal)
			}
		}
	case TypeFair:
		if i != 0 {
			return fmt.Errorf("journal: replay record %d: fair ledger not at journal head", i)
		}
		if obs != nil {
			if err := obs.Fair(*rec.Fair); err != nil {
				return fmt.Errorf("journal: replay record %d (fair): %w", i, err)
			}
		}
	case TypeAdmit, TypeBatch:
		specs := make([]sim.JobSpec, len(rec.Jobs))
		for k, j := range rec.Jobs {
			spec, err := j.spec()
			if err != nil {
				return fmt.Errorf("journal: replay record %d (%s) job %d: %w", i, rec.Type, k, err)
			}
			specs[k] = spec
		}
		now := eng.Now()
		ids, err := eng.AdmitBatch(specs)
		if err != nil {
			return fmt.Errorf("journal: replay record %d (%s): %w", i, rec.Type, err)
		}
		if ids[0] != rec.Base {
			return fmt.Errorf("journal: replay record %d (%s): engine assigned job %d, journal says %d — journal does not match this configuration", i, rec.Type, ids[0], rec.Base)
		}
		if obs != nil {
			obs.Admitted(rec, ids, now)
		}
	case TypeCancel:
		if err := eng.Cancel(rec.ID); err != nil {
			return fmt.Errorf("journal: replay record %d (cancel %d): %w", i, rec.ID, err)
		}
		if obs != nil {
			obs.Cancelled(rec.ID)
		}
	case TypeSteal:
		specs := make([]sim.JobSpec, len(rec.IDs))
		for k, id := range rec.IDs {
			spec, err := eng.Withdraw(id)
			if err != nil {
				return fmt.Errorf("journal: replay record %d (steal %d): %w", i, id, err)
			}
			specs[k] = spec
		}
		if so, ok := obs.(StealObserver); ok {
			so.Stolen(rec, specs)
		}
	case TypeStep, TypeSteps:
		n := rec.N
		if rec.Type == TypeStep {
			n = 1
		}
		info, err := eng.StepN(n)
		if err != nil {
			return fmt.Errorf("journal: replay record %d (%s): %w", i, rec.Type, err)
		}
		if info.Idle {
			return fmt.Errorf("journal: replay record %d (%s): engine is idle but the journal recorded a step to %d — journal does not match this configuration", i, rec.Type, rec.Now)
		}
		if info.Steps != n {
			return fmt.Errorf("journal: replay record %d (%s): engine executed %d of %d recorded steps — journal does not match this configuration", i, rec.Type, info.Steps, n)
		}
		if info.Step != rec.Now {
			return fmt.Errorf("journal: replay record %d (%s): engine stepped to %d, journal says %d — journal does not match this configuration", i, rec.Type, info.Step, rec.Now)
		}
		if obs != nil {
			obs.Stepped(info)
		}
	default:
		return fmt.Errorf("journal: replay record %d: unknown type %q", i, rec.Type)
	}
	return nil
}
