package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"krad/internal/core"
	"krad/internal/dag"
	"krad/internal/sched"
	"krad/internal/sim"
)

// BenchmarkShardedStepThroughput measures aggregate step throughput as
// the shard count grows, with a fixed workload per shard: each shard gets
// the same job set, so per-engine work is constant and any speedup is the
// step loops running on separate cores. On a 4+ core machine, shards=4
// should sustain well over 2× the aggregate steps/s of shards=1.
func BenchmarkShardedStepThroughput(b *testing.B) {
	const jobsPerShard = 24
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var stepsPerSec float64
			for i := 0; i < b.N; i++ {
				cfg := Config{
					Sim: sim.Config{
						K: 2, Caps: []int{2, 2}, Pick: dag.PickFIFO,
					},
					Shards:       shards,
					NewScheduler: func() sched.Scheduler { return core.NewKRAD(2) },
					MaxInFlight:  shards * jobsPerShard,
				}
				svc, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				// One batch per shard (round-robin routes whole batches),
				// admitted before the clocks start so the drain is pure
				// stepping.
				specs := make([]sim.JobSpec, jobsPerShard)
				for j := range specs {
					specs[j] = sim.JobSpec{Graph: dag.RoundRobinChain(2, 30)}
				}
				for s := 0; s < shards; s++ {
					if _, err := svc.SubmitBatch("", specs); err != nil {
						b.Fatal(err)
					}
				}
				total := int64(shards * jobsPerShard)
				start := time.Now()
				svc.Start()
				for svc.Stats().Completed < total {
					time.Sleep(100 * time.Microsecond)
				}
				elapsed := time.Since(start)
				st := svc.Stats()
				stepsPerSec += float64(st.Steps) / elapsed.Seconds()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if err := svc.Close(ctx); err != nil {
					b.Fatal(err)
				}
				cancel()
			}
			b.ReportMetric(stepsPerSec/float64(b.N), "steps/s")
		})
	}
}

// BenchmarkAdmitBurst measures the admission path alone — the clock is
// never started, so the numbers isolate what AdmitBatch buys: one lock
// acquisition and one wake per burst instead of one per job.
func BenchmarkAdmitBurst(b *testing.B) {
	const burst = 64
	mk := func(b *testing.B) (*Service, []sim.JobSpec) {
		b.Helper()
		cfg := testConfig(2, 2, 2)
		cfg.MaxInFlight = 1 << 30
		svc, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		specs := make([]sim.JobSpec, burst)
		for i := range specs {
			specs[i] = sim.JobSpec{Graph: dag.ForkJoin(2, 4, 1, 2, 1)}
		}
		return svc, specs
	}

	b.Run("serial", func(b *testing.B) {
		svc, specs := mk(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range specs {
				if _, err := svc.Submit(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		svc, specs := mk(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.SubmitBatch("", specs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSubmitService builds an unstarted single-shard service sized for
// submit-path benchmarks: RetireDone keeps per-job state recyclable and
// the in-flight bound never bites.
func benchSubmitService(b *testing.B) *Service {
	b.Helper()
	cfg := testConfig(2, 4, 4)
	cfg.RetireDone = true
	cfg.MaxInFlight = 1 << 30
	svc, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = svc.Close(context.Background()) })
	return svc
}

// handleSubmitUnpooled is the pre-pooling submit path, kept verbatim for
// the before/after comparison BenchmarkHTTPSubmit publishes: a fresh
// decoder and request struct per request, no body reuse, no early 413.
func (s *Service) handleSubmitUnpooled(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job JSON: %v", err)
		return
	}
	spec, err := req.spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := s.SubmitTenant(r.Header.Get(PlacementKeyHeader), r.Header.Get(TenantHeader), spec)
	if !s.writeSubmitError(w, err) {
		return
	}
	st, _ := s.Job(id)
	writeJSON(w, http.StatusCreated, map[string]any{"id": id, "release": st.Release, "shard": ShardOf(id)})
}

// BenchmarkHTTPSubmit measures the submit handler end to end (no network:
// handler invoked directly), pooled against the pre-pooling decode path,
// for both the small rigid wire form and a wide DAG body.
func BenchmarkHTTPSubmit(b *testing.B) {
	rigid := []byte(`{"rigid":{"k":2,"cat":1,"procs":2,"steps":3}}`)
	graphBody, err := json.Marshal(submitRequest{Graph: dag.ForkJoin(2, 16, 1, 2, 1)})
	if err != nil {
		b.Fatal(err)
	}
	bodies := []struct {
		name string
		body []byte
	}{{"rigid", rigid}, {"dag16", graphBody}}
	paths := []struct {
		name    string
		handler func(*Service) http.HandlerFunc
	}{
		{"pooled", func(s *Service) http.HandlerFunc { return s.handleSubmit }},
		{"unpooled", func(s *Service) http.HandlerFunc { return s.handleSubmitUnpooled }},
	}
	for _, body := range bodies {
		for _, path := range paths {
			b.Run(body.name+"/"+path.name, func(b *testing.B) {
				svc := benchSubmitService(b)
				h := path.handler(svc)
				rec := httptest.NewRecorder()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body.body))
					rec.Body.Reset()
					h(rec, req)
					if rec.Code != http.StatusCreated {
						b.Fatalf("status %d: %s", rec.Code, rec.Body)
					}
				}
			})
		}
	}
}
