package baselines

import (
	"testing"

	"krad/internal/sched"
)

func catJobs(desires ...int) []sched.CatJob {
	jobs := make([]sched.CatJob, len(desires))
	for i, d := range desires {
		jobs[i] = sched.CatJob{ID: i, Desire: d}
	}
	return jobs
}

func views(desires ...[]int) []sched.JobView {
	out := make([]sched.JobView, len(desires))
	for i, d := range desires {
		out[i] = sched.JobView{ID: i, Desire: d}
	}
	return out
}

func TestDEQOnlyStarvesLateJobsUnderOverload(t *testing.T) {
	s := NewDEQOnly(1)
	jobs := views([]int{1}, []int{1}, []int{1}, []int{1})
	caps := []int{2}
	for step := int64(1); step <= 3; step++ {
		allot := s.Allot(step, jobs, caps)
		if allot[0][0] != 1 || allot[1][0] != 1 {
			t.Fatalf("step %d: first two jobs not served: %v", step, allot)
		}
		if allot[2][0] != 0 || allot[3][0] != 0 {
			t.Fatalf("step %d: DEQ-only unexpectedly served late jobs: %v", step, allot)
		}
	}
}

func TestRROnlyNeverSpaceShares(t *testing.T) {
	s := NewRROnly(1)
	// One wide job, plenty of processors: RR still gives exactly one.
	allot := s.Allot(1, views([]int{10}), []int{8})
	if allot[0][0] != 1 {
		t.Errorf("rr-only gave %d processors to a single job, want 1", allot[0][0])
	}
}

func TestRROnlyCyclesWithoutStarvation(t *testing.T) {
	s := NewRROnly(1)
	jobs := views([]int{1}, []int{1}, []int{1}, []int{1}, []int{1})
	served := make([]int, 5)
	// 5 jobs on 2 processors: a cycle is 3 steps; run 7 full cycles.
	const cycles = 7
	for step := int64(1); step <= 3*cycles; step++ {
		allot := s.Allot(step, jobs, []int{2})
		total := 0
		for i := range jobs {
			served[i] += allot[i][0]
			total += allot[i][0]
		}
		if total != 2 {
			t.Fatalf("step %d: served %d, want 2", step, total)
		}
	}
	for i, v := range served {
		if v < cycles || v > 2*cycles {
			t.Errorf("job %d served %d times in %d cycles, want within [%d,%d]", i, v, cycles, cycles, 2*cycles)
		}
	}
}

func TestEQUIIgnoresDesire(t *testing.T) {
	s := NewEQUI(1)
	// Job 0 wants 1, job 1 wants 9; EQUI still splits 4/4 — the waste is
	// the point of the baseline.
	allot := s.Allot(0, views([]int{1}, []int{9}), []int{8})
	if allot[0][0] != 4 || allot[1][0] != 4 {
		t.Errorf("equi allot = %v, want 4/4", allot)
	}
}

func TestEQUIRotatesRemainder(t *testing.T) {
	s := NewEQUI(1)
	jobs := views([]int{5}, []int{5}, []int{5})
	a := s.Allot(0, jobs, []int{7})
	b := s.Allot(1, jobs, []int{7})
	diff := false
	for i := range jobs {
		if a[i][0] != b[i][0] {
			diff = true
		}
	}
	if !diff {
		t.Error("remainder did not rotate between steps")
	}
}

func TestFCFSFillsInArrivalOrder(t *testing.T) {
	s := NewFCFS(1)
	allot := s.Allot(1, views([]int{3}, []int{4}, []int{2}), []int{5})
	if allot[0][0] != 3 || allot[1][0] != 2 || allot[2][0] != 0 {
		t.Errorf("fcfs allot = %v, want [3 2 0]", allot)
	}
}

func TestGreedyDesireFillsWidestFirst(t *testing.T) {
	s := NewGreedyDesire(1)
	allot := s.Allot(1, views([]int{2}, []int{6}, []int{3}), []int{7})
	if allot[1][0] != 6 {
		t.Errorf("widest job not filled first: %v", allot)
	}
	if allot[2][0] != 1 || allot[0][0] != 0 {
		t.Errorf("leftover misallocated: %v", allot)
	}
}

type fakeOracle map[int][]int

func (f fakeOracle) RemainingWork(id int) []int { return f[id] }
func (f fakeOracle) ReleaseTime(int) int64      { return 0 }

func TestSJFOrdersByRemainingWork(t *testing.T) {
	s := NewSJF()
	s.SetOracle(fakeOracle{0: {100}, 1: {2}, 2: {50}})
	jobs := views([]int{4}, []int{4}, []int{4})
	allot := s.Allot(1, jobs, []int{6})
	if allot[1][0] != 4 {
		t.Errorf("shortest job not served first: %v", allot)
	}
	if allot[2][0] != 2 || allot[0][0] != 0 {
		t.Errorf("remaining capacity misallocated: %v", allot)
	}
}

func TestSJFPanicsWithoutOracle(t *testing.T) {
	s := NewSJF()
	defer func() {
		if recover() == nil {
			t.Error("SJF without oracle did not panic")
		}
	}()
	s.Allot(1, views([]int{1}), []int{1})
}

func TestAllBaselinesRespectCapacity(t *testing.T) {
	jobs := views([]int{5, 2}, []int{3, 7}, []int{9, 1}, []int{4, 4})
	caps := []int{3, 2}
	schedulers := []sched.Scheduler{
		NewDEQOnly(2), NewRROnly(2), NewEQUI(2), NewFCFS(2), NewGreedyDesire(2),
	}
	for _, s := range schedulers {
		for step := int64(1); step <= 5; step++ {
			allot := s.Allot(step, jobs, caps)
			if err := sched.ValidateAllotments(jobs, caps, allot); err != nil {
				t.Errorf("%s step %d: %v", s.Name(), step, err)
			}
		}
	}
}
