package dag

import "fmt"

// Stretch models performance heterogeneity — the paper's Section 8
// challenge, in its uniform-per-category form — inside the unit-time
// K-DAG model: processors of category α run at relative cost factors[α−1],
// i.e. an α-task occupies its processor for factors[α−1] unit steps.
//
// The transform replaces every α-task with a chain of factors[α−1] unit
// α-tasks, rewiring incoming edges to the chain head and outgoing edges
// from the chain tail. The result is an ordinary K-DAG, so every theorem
// (and this library's whole machinery) applies unchanged; α-work
// multiplies by factors[α−1] and the span becomes the cost-weighted
// longest path. The chain form is slightly conservative versus true
// non-preemptable occupancy — a chain's steps may migrate between
// α-processors across steps — but work and critical-path lower bounds,
// and hence all competitive ratios measured against them, are identical.
func Stretch(g *Graph, factors []int) (*Graph, error) {
	if len(factors) != g.k {
		return nil, fmt.Errorf("dag: Stretch got %d factors for K=%d", len(factors), g.k)
	}
	for a, f := range factors {
		if f < 1 {
			return nil, fmt.Errorf("dag: Stretch factor for category %d is %d, need ≥ 1", a+1, f)
		}
	}
	out := New(g.k).Named(g.name + "-stretched")
	heads := make([]TaskID, g.NumTasks())
	tails := make([]TaskID, g.NumTasks())
	for id := 0; id < g.NumTasks(); id++ {
		c := g.cats[id]
		f := factors[c-1]
		head := out.AddTask(c)
		tail := head
		for i := 1; i < f; i++ {
			next := out.AddTask(c)
			out.MustEdge(tail, next)
			tail = next
		}
		heads[id] = head
		tails[id] = tail
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, v := range g.succ[u] {
			out.MustEdge(tails[u], heads[v])
		}
	}
	return out, nil
}

// MustStretch is Stretch panicking on error, for deterministic pipelines.
func MustStretch(g *Graph, factors []int) *Graph {
	out, err := Stretch(g, factors)
	if err != nil {
		panic(err)
	}
	return out
}
