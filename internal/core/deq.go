// Package core implements the paper's contribution: the DEQ and ROUND-ROBIN
// sub-procedures, the per-category RAD scheduler that unifies them, and
// K-RAD — one RAD per resource category (Figure 2 of the paper).
package core

import "krad/internal/sched"

// Deq distributes p processors among jobs with the given positive desires,
// following the recursive DEQ procedure of Figure 2:
//
//	S ← {Ji ∈ Q : d(Ji) ≤ P/|Q|}
//	if S = ∅  → every job gets an equal share P/|Q| (the "mean deprived
//	            allotment")
//	else      → jobs in S get exactly their desire; recurse on Q−S with the
//	            remaining processors
//
// The paper's analysis uses real-valued equal shares; processors are
// integral, so the equal share is realized as ⌊P/|Q|⌋ with the remainder
// spread one processor each over the deprived jobs, starting at position
// rot mod |Q| so no job is systematically favored across steps. The
// returned allotments satisfy: Σ allot ≤ p; allot[i] ≤ desires[i]; every
// "satisfied" job receives exactly its desire; all "deprived" jobs receive
// shares differing by at most one.
//
// Desires must be strictly positive (the caller passes only α-active jobs).
func Deq(desires []int, p, rot int) []int {
	allot := make([]int, len(desires))
	if len(desires) == 0 || p <= 0 {
		return allot
	}
	return DeqInto(allot, make([]int, len(desires)), desires, p, rot)
}

// DeqInto is the allocation-free form of Deq. allot and scratch are
// caller-owned slices of len(desires); allot is overwritten with the
// allotments and returned, scratch is clobbered. Hot paths (RAD.AllotInto,
// the engine's step loop) reuse both across calls.
func DeqInto(allot, scratch, desires []int, p, rot int) []int {
	for i := range allot {
		allot[i] = 0
	}
	if len(desires) == 0 || p <= 0 {
		return allot
	}
	// live holds the indices of jobs still being partitioned.
	live := scratch
	for i := range live {
		live[i] = i
	}
	for len(live) > 0 && p > 0 {
		fair := p / len(live)
		// Collect the satisfied set S: desire ≤ fair share.
		rest := live[:0]
		taken := 0
		satisfied := 0
		for _, i := range live {
			if desires[i] <= fair {
				allot[i] = desires[i]
				taken += desires[i]
				satisfied++
			} else {
				rest = append(rest, i)
			}
		}
		if satisfied == 0 {
			// S = ∅: equal (deprived) shares with rotated remainder.
			n := len(rest)
			share := p / n
			extra := p % n
			start := 0
			if extra > 0 {
				start = rot % n
				if start < 0 {
					start += n
				}
			}
			for j := 0; j < n; j++ {
				a := share
				// The jobs at positions start, start+1, ... (mod n) absorb
				// the remainder. Each such job's desire exceeds fair ≥
				// share, so desire ≥ share+1 and the bump never exceeds it.
				if extra > 0 && (j-start+n)%n < extra {
					a++
				}
				allot[rest[j]] = a
			}
			return allot
		}
		p -= taken
		live = rest
	}
	return allot
}

// deqStableHorizon reports how many additional consecutive steps a DEQ
// partition over jobs (the α-active set, positive desires) stays in
// closed form under the engine's leap law: the active set does not change
// and every job's desire shrinks by exactly its allotment per step. That
// holds while every job remains strictly deprived — each then receives
// the equal share ⌊p/n⌋, plus possibly one rotated remainder processor
// (which moves with t but is exactly accounted by deqLeapTotals). The
// horizon keeps every job deprived at every covered step AND strictly
// positive after the last one (so no completion or phase boundary is
// crossed mid-leap), using the worst-case per-step decrement share+1 when
// a remainder exists. No jobs (or no processors) means the all-zero
// output repeats indefinitely: sched.Unbounded.
func deqStableHorizon(jobs []sched.CatJob, p int) int64 {
	n := len(jobs)
	if n == 0 || p <= 0 {
		return sched.Unbounded
	}
	if n > p {
		return 0
	}
	share, extra := p/n, p%n
	// dec is the most a desire can drop per step; slack is the minimum
	// entry desire that keeps a job deprived through the step and above
	// zero after it.
	dec, slack := share, share+1
	if extra > 0 {
		dec, slack = share+1, share+2
	}
	h := sched.Unbounded
	for _, j := range jobs {
		if j.Desire < slack {
			return 0
		}
		if hj := int64((j.Desire - slack) / dec); hj < h {
			h = hj
		}
	}
	return h
}

// deqLeapTotals accumulates into dst (len(jobs), zeroed by the caller)
// each job's total DEQ allotment over the n consecutive steps t..t+n−1,
// assuming the all-deprived regime deqStableHorizon vouched for: every
// job gets the equal share each step, and the p%len(jobs) remainder
// processors rotate starting at position s%len(jobs) on step s (exactly
// Deq's rot = int(s) rotation). The per-job bonus over the window is
// computed in closed form, so a leap costs O(jobs) regardless of n.
func deqLeapTotals(t int64, jobs []sched.CatJob, p int, n int64, dst []int) {
	nj := len(jobs)
	if nj == 0 || p <= 0 {
		return
	}
	share, extra := p/nj, p%nj
	for i := range jobs {
		dst[i] = int(n) * share
	}
	if extra == 0 {
		return
	}
	// Step s gives one bonus processor to positions (s+m) mod nj for
	// m ∈ [0, extra): full cycles of nj steps serve every position extra
	// times; the rem = n mod nj trailing steps serve a circular window.
	cycles, rem := n/int64(nj), int(n%int64(nj))
	for j := range jobs {
		bonus := int64(extra) * cycles
		if rem > 0 {
			// Position j is served at step s iff (j−s) mod nj < extra.
			// Over s ∈ [t, t+rem) the values (c−u) mod nj, u ∈ [0, rem),
			// walk down the circle from c = (j−t) mod nj; count how many
			// land in [0, extra).
			c := int(((int64(j)-t)%int64(nj) + int64(nj)) % int64(nj))
			lo := c - rem + 1
			hi := c
			if hi > extra-1 {
				hi = extra - 1
			}
			if lo >= 0 {
				if hi >= lo {
					bonus += int64(hi - lo + 1)
				}
			} else {
				bonus += int64(hi + 1) // [0, min(c, extra−1)]
				if lo2 := lo + nj; extra-1 >= lo2 {
					bonus += int64(extra - lo2) // [lo+nj, extra−1]
				}
			}
		}
		dst[j] += int(bonus)
	}
}
