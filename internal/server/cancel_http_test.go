package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"krad/internal/dag"
)

// postJobRelease submits a job with an explicit absolute release time.
func postJobRelease(t *testing.T, url string, g *dag.Graph, release int64) int {
	t.Helper()
	body, err := json.Marshal(submitRequest{Graph: g, Release: release})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var out struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func deleteJob(t *testing.T, url string, id int) (int, jobJSON) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", url, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobJSON
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return resp.StatusCode, st
}

// mustStep hand-drives the single shard's clock by one step and returns
// how many tasks ran (summed over categories).
func mustStep(t *testing.T, svc *Service) int {
	t.Helper()
	progressed, err := svc.shards[0].stepOnce()
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	if !progressed {
		t.Fatal("engine idle, expected work")
	}
	v := svc.shards[0].view()
	total := 0
	for _, w := range v.snap.ExecutedTotal {
		total += int(w)
	}
	return total
}

// TestCancelActiveFreesProcessorsNextStep drives the clock by hand
// through the HTTP layer: with one processor, an active job is cancelled
// via DELETE and the very next step must execute another job's task —
// the freed processor is reused immediately, not a step late.
func TestCancelActiveFreesProcessorsNextStep(t *testing.T) {
	svc, ts := startHTTPClock(t, testConfig(1, 1), false) // frozen clock, P=[1]

	idA := postJobRelease(t, ts.URL, dag.UniformChain(1, 10, 1), 0)
	if got := mustStep(t, svc); got != 1 {
		t.Fatalf("step 1 executed %d tasks, want 1 (job A alone)", got)
	}
	if st := getJob(t, ts.URL, idA); st.State != "active" {
		t.Fatalf("job A state %q, want active", st.State)
	}

	// Admit B at the current clock: it releases on the next step but the
	// single processor is held by A.
	now := svc.shards[0].view().snap.Now
	idB := postJobRelease(t, ts.URL, dag.UniformChain(1, 3, 1), now)

	// Cancel A while it is active.
	code, st := deleteJob(t, ts.URL, idA)
	if code != http.StatusOK || st.State != "cancelled" {
		t.Fatalf("cancel active: status %d state %q", code, st.State)
	}

	before := svc.shards[0].view().snap.ExecutedTotal[0]
	if got := mustStep(t, svc); got != int(before)+1 {
		t.Fatalf("step after cancel executed %d total tasks, want %d — freed processor not reused on the very next step", got, before+1)
	}
	if st := getJob(t, ts.URL, idB); st.State != "active" {
		t.Fatalf("job B state %q after reclaiming the processor", st.State)
	}
	// B finishes in two more steps on the reclaimed processor.
	mustStep(t, svc)
	mustStep(t, svc)
	if st := getJob(t, ts.URL, idB); st.State != "done" {
		t.Fatalf("job B state %q, want done", st.State)
	}
	// A stays cancelled with no completion time.
	if st := getJob(t, ts.URL, idA); st.State != "cancelled" || st.Completion != 0 {
		t.Fatalf("job A after drain: %+v", st)
	}
}

// TestCancelPendingNeverReleases cancels a not-yet-released job via
// DELETE and steps the clock past its release time: the job must never
// become active and its would-be processors go to other work.
func TestCancelPendingNeverReleases(t *testing.T) {
	svc, ts := startHTTPClock(t, testConfig(1, 1), false)

	idA := postJobRelease(t, ts.URL, dag.UniformChain(1, 6, 1), 0)
	idB := postJobRelease(t, ts.URL, dag.UniformChain(1, 3, 1), 2) // pending until step 3
	if st := getJob(t, ts.URL, idB); st.State != "pending" {
		t.Fatalf("job B state %q, want pending", st.State)
	}

	code, st := deleteJob(t, ts.URL, idB)
	if code != http.StatusOK || st.State != "cancelled" {
		t.Fatalf("cancel pending: status %d state %q", code, st.State)
	}

	// Step well past B's release: every step must execute exactly one of
	// A's tasks — B never contends for the processor.
	for i := 0; i < 6; i++ {
		if got := mustStep(t, svc); got != i+1 {
			t.Fatalf("step %d: cumulative executed %d, want %d", i+1, got, i+1)
		}
	}
	if st := getJob(t, ts.URL, idA); st.State != "done" {
		t.Fatalf("job A state %q, want done", st.State)
	}
	if st := getJob(t, ts.URL, idB); st.State != "cancelled" || st.Completion != 0 {
		t.Fatalf("job B resurrected: %+v", st)
	}
	// Cancelling a done job conflicts; stats agree with what happened.
	if code, _ := deleteJob(t, ts.URL, idA); code != http.StatusConflict {
		t.Fatalf("cancel done job: status %d", code)
	}
	stats := svc.Stats()
	if stats.Completed != 1 || stats.Cancelled != 1 {
		t.Fatalf("stats %+v", stats)
	}
}
