package baselines

import (
	"testing"

	"krad/internal/sched"
)

func TestLAPSValidation(t *testing.T) {
	for _, beta := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("beta=%v accepted", beta)
				}
			}()
			NewLAPS(1, beta)
		}()
	}
}

func TestLAPSSharesAmongLatest(t *testing.T) {
	s := NewLAPS(1, 0.5)
	// 4 jobs, β = 0.5 → the 2 latest (IDs 2, 3) share everything.
	jobs := views([]int{9}, []int{9}, []int{9}, []int{9})
	allot := s.Allot(0, jobs, []int{8})
	if allot[0][0] != 0 || allot[1][0] != 0 {
		t.Errorf("early jobs served: %v", allot)
	}
	if allot[2][0] != 4 || allot[3][0] != 4 {
		t.Errorf("latest jobs not equi-shared: %v", allot)
	}
}

func TestLAPSBetaOneIsEqui(t *testing.T) {
	l := NewLAPS(1, 1.0)
	e := NewEQUI(1)
	jobs := views([]int{3}, []int{3}, []int{3})
	for step := int64(0); step < 5; step++ {
		a := l.Allot(step, jobs, []int{7})
		b := e.Allot(step, jobs, []int{7})
		for i := range jobs {
			if a[i][0] != b[i][0] {
				t.Fatalf("step %d: laps(1)=%v equi=%v", step, a, b)
			}
		}
	}
}

func TestLAPSRespectsCapacity(t *testing.T) {
	s := NewLAPS(2, 0.3)
	jobs := views([]int{5, 5}, []int{5, 5}, []int{5, 5}, []int{5, 5}, []int{5, 5})
	for step := int64(0); step < 6; step++ {
		allot := s.Allot(step, jobs, []int{3, 4})
		if err := sched.ValidateAllotments(jobs, []int{3, 4}, allot); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGangValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("quantum 0 accepted")
		}
	}()
	NewGang(0)
}

func TestGangExclusiveOwnership(t *testing.T) {
	g := NewGang(2)
	jobs := []sched.JobView{
		{ID: 0, Desire: []int{3, 1}},
		{ID: 1, Desire: []int{2, 2}},
		{ID: 2, Desire: []int{1, 1}},
	}
	caps := []int{2, 2}
	ownerAt := make([]int, 0, 8)
	for step := int64(1); step <= 8; step++ {
		allot := g.Allot(step, jobs, caps)
		if err := sched.ValidateAllotments(jobs, caps, allot); err != nil {
			t.Fatal(err)
		}
		owner := -1
		for i, row := range allot {
			total := 0
			for _, v := range row {
				total += v
			}
			if total > 0 {
				if owner != -1 {
					t.Fatalf("step %d: two owners", step)
				}
				owner = i
			}
		}
		if owner < 0 {
			t.Fatalf("step %d: nobody owns the machine", step)
		}
		// Owner gets min(desire, cap) in every category.
		for a := range caps {
			want := jobs[owner].Desire[a]
			if want > caps[a] {
				want = caps[a]
			}
			if allot[owner][a] != want {
				t.Fatalf("step %d: owner row %v, want full machine", step, allot[owner])
			}
		}
		ownerAt = append(ownerAt, owner)
	}
	// Quantum 2: owners rotate 0,0,1,1,2,2,0,0.
	want := []int{0, 0, 1, 1, 2, 2, 0, 0}
	for i := range want {
		if ownerAt[i] != want[i] {
			t.Fatalf("ownership sequence %v, want %v", ownerAt, want)
		}
	}
}

func TestGangHandlesOwnerCompletion(t *testing.T) {
	g := NewGang(10)
	jobs := []sched.JobView{{ID: 0, Desire: []int{1}}, {ID: 1, Desire: []int{1}}}
	g.Allot(1, jobs, []int{4}) // job 0 owns
	// Job 0 completes; only job 1 remains.
	remaining := []sched.JobView{{ID: 1, Desire: []int{1}}}
	allot := g.Allot(2, remaining, []int{4})
	if allot[0][0] != 1 {
		t.Errorf("machine not handed to the surviving job: %v", allot)
	}
}

func TestGangEmpty(t *testing.T) {
	g := NewGang(3)
	if got := g.Allot(1, nil, []int{2}); len(got) != 0 {
		t.Errorf("empty allot = %v", got)
	}
}
