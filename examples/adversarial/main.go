// Adversarial: reproduce the Theorem 1 lower-bound construction (Figure 3)
// and watch the makespan competitive ratio of K-RAD — or any deterministic
// non-clairvoyant scheduler — climb toward K + 1 − 1/Pmax as the scale
// parameter m grows, while a clairvoyant run achieves the closed-form
// optimum exactly.
//
//	go run ./examples/adversarial [-k 3] [-p 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"krad"
)

func main() {
	log.SetFlags(0)
	kFlag := flag.Int("k", 3, "number of resource categories (≥ 2)")
	pFlag := flag.Int("p", 4, "processors per category")
	flag.Parse()

	k, p := *kFlag, *pFlag
	caps := make([]int, k)
	for i := range caps {
		caps[i] = p
	}

	fmt.Printf("Figure 3 construction on K=%d categories, %d processors each\n", k, p)
	fmt.Printf("theoretical ratio limit: K + 1 − 1/Pmax = %.3f\n\n", float64(k)+1-1/float64(p))
	fmt.Printf("%4s  %6s  %12s  %10s  %8s\n", "m", "jobs", "T adversarial", "T* optimal", "ratio")

	for _, m := range []int{1, 2, 4, 8, 16} {
		adv, err := krad.NewAdversarial(k, m, caps)
		if err != nil {
			log.Fatal(err)
		}

		// Adversarial run: the big job is submitted last, so K-RAD's
		// round-robin reaches its level-1 task at the end of the first
		// cycle, and every job defers critical-path tasks (PickCPLast) —
		// exactly the adversary of the proof.
		tAdv := runSet(k, caps, adv, true, krad.PickCPLast)

		// Benign run: big job first, critical path first — the optimal
		// clairvoyant schedule. It matches the closed form K + m·PK − 1.
		tOpt := runSet(k, caps, adv, false, krad.PickCPFirst)
		if tOpt != int64(adv.OptimalMakespan()) {
			log.Fatalf("benign run %d diverged from closed form %d", tOpt, adv.OptimalMakespan())
		}

		fmt.Printf("%4d  %6d  %12d  %10d  %8.3f\n",
			m, adv.NumJobs(), tAdv, tOpt, float64(tAdv)/float64(tOpt))
	}

	fmt.Println("\nThe ratio approaches the limit from below — Theorem 1's bound is")
	fmt.Println("tight, and by Theorem 3 K-RAD never does worse than this on any input.")
}

func runSet(k int, caps []int, adv *krad.Adversarial, bigLast bool, pick krad.PickPolicy) int64 {
	jobs := adv.JobSet(bigLast)
	specs := make([]krad.JobSpec, len(jobs))
	for i, g := range jobs {
		specs[i] = krad.JobSpec{Graph: g}
	}
	res, err := krad.Run(krad.Config{
		K: k, Caps: caps, Scheduler: krad.NewKRAD(k), Pick: pick,
	}, specs)
	if err != nil {
		log.Fatal(err)
	}
	return res.Makespan
}
