package sim

// RuntimeFamily classifies a job's execution model. The engine itself is
// family-agnostic — it drives every job through the RuntimeJob contract
// plus whatever optional capabilities (runtimeCaps) the runtime declares —
// but the family travels with the job for operators: status reports,
// journal admission records, and workload generators all speak in
// families.
//
// The shipped families and their allotment contracts:
//
//   - FamilyProfile: phase/barrier profile jobs (internal/profile). Unit
//     tasks, drain law, always leapable mid-phase.
//   - FamilyDAG: unit-task K-DAG jobs (internal/dag.Instance). Drain law;
//     leapable inside promotion-free frontier windows (StableRuntime).
//   - FamilyTimed: duration-annotated DAG jobs (dag.TimedInstance).
//     Non-preemptive floors (hold law while tasks are in flight), never
//     leapable.
//   - FamilyMoldable: moldable tasks under precedence with concave
//     speedup (internal/moldable). Non-preemptive floors; leapable across
//     held phases (HoldRuntime).
type RuntimeFamily int

const (
	// FamilyUnknown is the zero value: a JobSource that does not declare
	// its family (external implementations predating FamilySource).
	FamilyUnknown RuntimeFamily = iota
	// FamilyProfile is the compact parallelism-profile representation.
	FamilyProfile
	// FamilyDAG is the unit-task K-DAG representation.
	FamilyDAG
	// FamilyTimed is the duration-annotated non-preemptive DAG.
	FamilyTimed
	// FamilyMoldable is the moldable-task family: each task picks a
	// processor count once at start under a concave speedup curve.
	FamilyMoldable
)

// String returns the family's wire spelling (used in job status, journal
// records and metric labels).
func (f RuntimeFamily) String() string {
	switch f {
	case FamilyProfile:
		return "profile"
	case FamilyDAG:
		return "dag"
	case FamilyTimed:
		return "timed"
	case FamilyMoldable:
		return "moldable"
	default:
		return "unknown"
	}
}

// FamilySource is an optional JobSource extension declaring the source's
// runtime family. Sources that do not implement it are FamilyUnknown —
// fully functional, just unlabeled.
type FamilySource interface {
	Family() RuntimeFamily
}

// FamilyOf resolves a source's runtime family.
func FamilyOf(src JobSource) RuntimeFamily {
	if fs, ok := src.(FamilySource); ok {
		return fs.Family()
	}
	return FamilyUnknown
}

// HoldRuntime is the event-leap capability of floor-pinning runtimes
// (moldable tasks, and any future non-preemptive family): the complement
// of LeapRuntime's drain law. A drain-law runtime leaps because its
// desires decrease by exactly the allotment each step; a hold-law runtime
// leaps because, in a held phase — every frontier task in flight, nothing
// ready, so each category's desire equals its floor — repeating the
// floor allotment changes nothing but in-flight countdowns. The engine
// treats a job as held for a round only when it implements HoldRuntime
// AND its snapshotted desires equal its floors in every category; held
// jobs leap via LeapHold while drain jobs in the same window leap via
// LeapTasks.
type HoldRuntime interface {
	RuntimeJob
	// HoldFor reports how many additional steps after the current one the
	// runtime provably stays held: no task starts, finishes, or becomes
	// ready, so desires and floors are frozen. The window must end before
	// any completion — leaps never cross completions. ≤ 0 disables
	// leaping this round. Only meaningful while the runtime is held.
	HoldFor() int64
	// LeapHold applies n consecutive held steps in closed form, leaving
	// the runtime in the state n single Execute(floor)+Advance rounds
	// would have produced. The engine guarantees 1 ≤ n ≤ HoldFor() + 1
	// from the same round's HoldFor report.
	LeapHold(n int64)
}

// runtimeCaps caches a runtime's optional capability interfaces, asserted
// once at admission. This is the family-capability seam: the engine's hot
// paths branch on these cached fields and never type-switch on concrete
// runtimes, so a new family plugs in by implementing capabilities, not by
// editing the engine.
type runtimeCaps struct {
	task   TaskRuntime   // reports executed task IDs (TraceTasks)
	floor  FloorRuntime  // pins processors non-preemptively
	leap   LeapRuntime   // drain-law event-leap
	stable StableRuntime // per-round leap eligibility (DAG frontiers)
	hold   HoldRuntime   // hold-law event-leap (moldable held phases)
}

// bindCaps asserts every optional capability once.
func bindCaps(rt RuntimeJob) runtimeCaps {
	var c runtimeCaps
	c.task, _ = rt.(TaskRuntime)
	c.floor, _ = rt.(FloorRuntime)
	c.leap, _ = rt.(LeapRuntime)
	c.stable, _ = rt.(StableRuntime)
	c.hold, _ = rt.(HoldRuntime)
	return c
}
