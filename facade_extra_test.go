package krad_test

import (
	"strings"
	"testing"

	"krad"
)

// TestProfileJobsThroughFacade drives the compact representation and its
// generator through the public API.
func TestProfileJobsThroughFacade(t *testing.T) {
	job, err := krad.NewProfileJob(2, "web", []krad.ProfilePhase{
		{Tasks: []int{4, 0}},
		{Tasks: []int{0, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := krad.Run(krad.Config{
		K: 2, Caps: []int{4, 4}, Scheduler: krad.NewKRAD(2), ValidateAllotments: true,
	}, []krad.JobSpec{{Source: job}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2 {
		t.Errorf("makespan %d, want 2 (two satisfied phases)", res.Makespan)
	}
}

// TestSWFThroughFacade writes a synthetic log and replays it.
func TestSWFThroughFacade(t *testing.T) {
	var b strings.Builder
	if err := krad.WriteSyntheticSWF(&b, 25, 3); err != nil {
		t.Fatal(err)
	}
	specs, recs, err := krad.ParseSWF(strings.NewReader(b.String()), krad.SWFOptions{
		K: 2, TimeScale: 300, MaxProcs: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 25 {
		t.Fatalf("%d records", len(recs))
	}
	res, err := krad.Run(krad.Config{
		K: 2, Caps: []int{8, 8}, Scheduler: krad.NewKRAD(2), ValidateAllotments: true,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if bc := krad.CheckTheorem3(res); !bc.OK {
		t.Errorf("Theorem 3 failed on SWF replay: %v", bc)
	}
}

// TestNonPreemptiveThroughFacade runs duration-annotated jobs with floors.
func TestNonPreemptiveThroughFacade(t *testing.T) {
	g := krad.ForkJoin(1, 4, 1, 1, 1)
	for id := 0; id < g.NumTasks(); id++ {
		g.SetDuration(krad.TaskID(id), 3)
	}
	res, err := krad.Run(krad.Config{
		K: 1, Caps: []int{2},
		Scheduler:          krad.WithFloors(krad.NewKRAD(1)),
		ValidateAllotments: true,
	}, []krad.JobSpec{{Source: krad.TimedGraphSource(g)}})
	if err != nil {
		t.Fatal(err)
	}
	// Work 18 on 2 procs, weighted span 9: fork(3) + bodies(3·4/2 = 6) +
	// join(3) = 12 steps.
	if res.Makespan != 12 {
		t.Errorf("makespan %d, want 12", res.Makespan)
	}
	// Preemptive expansion of the same graph gives the same makespan here
	// (migration-free workload).
	exp := krad.ExpandDurations(g)
	res2, err := krad.Run(krad.Config{
		K: 1, Caps: []int{2}, Scheduler: krad.NewKRAD(1), ValidateAllotments: true,
	}, []krad.JobSpec{{Graph: exp}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Makespan != res.Makespan {
		t.Errorf("preemptive %d vs non-preemptive %d", res2.Makespan, res.Makespan)
	}
}

// TestChurnObserverThroughFacade wires the churn counter into a run.
func TestChurnObserverThroughFacade(t *testing.T) {
	specs, err := krad.Mix{K: 2, Jobs: 10, MinSize: 3, MaxSize: 20, Seed: 4}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	churn := krad.NewChurn(2)
	_, err = krad.Run(krad.Config{
		K: 2, Caps: []int{3, 3}, Scheduler: krad.NewKRAD(2),
		Observer: churn.Observer(),
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if churn.Steps == 0 || churn.Total == 0 {
		t.Errorf("churn not recorded: %+v", churn)
	}
}

// TestPresetsThroughFacade runs a named preset end to end.
func TestPresetsThroughFacade(t *testing.T) {
	if len(krad.PresetNames()) < 5 {
		t.Fatal("presets missing")
	}
	p, err := krad.FindPreset("overload-storm")
	if err != nil {
		t.Fatal(err)
	}
	specs, err := p.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := krad.Run(krad.Config{
		K: p.K, Caps: p.Caps, Scheduler: krad.NewKRAD(p.K), ValidateAllotments: true,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EverOverloaded() {
		t.Error("overload-storm preset did not overload")
	}
}

// TestSoakManySeeds is a broad randomized sweep kept out of -short runs:
// every seed must produce a valid schedule satisfying Theorem 3 and
// Theorem 6 across machine shapes.
func TestSoakManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for seed := int64(1); seed <= 40; seed++ {
		k := int(seed%4) + 1
		caps := make([]int, k)
		for i := range caps {
			caps[i] = int(seed%5) + 2
		}
		specs, err := krad.Mix{
			K: k, Jobs: 30, MinSize: 2, MaxSize: 50, Seed: seed,
		}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		res, err := krad.Run(krad.Config{
			K: k, Caps: caps, Scheduler: krad.NewKRAD(k), ValidateAllotments: true,
		}, specs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if failures := krad.CheckAll(res); len(failures) != 0 {
			t.Errorf("seed %d: %v", seed, failures)
		}
	}
}
