package dag

import "fmt"

// Durations: the paper's model has unit-time tasks. Real tasks run for
// many steps, and two deployment interpretations exist:
//
//   - preemptive (a task's progress can pause and resume each step):
//     exactly equivalent to Stretch — replace the task with a chain — so
//     it needs no new machinery;
//   - non-preemptive (a started task holds its processor for its whole
//     duration): the scheduler loses per-step reallocation freedom. This
//     file adds optional per-task durations to Graph and a TimedInstance
//     runtime that exposes in-flight tasks as allotment floors (see
//     sched.WithFloors); experiment E16 measures the cost.
//
// A Graph without SetDuration calls behaves exactly as before.

// SetDuration declares that task id needs d ≥ 1 processor-steps. Tasks
// default to duration 1.
func (g *Graph) SetDuration(id TaskID, d int) {
	if err := g.checkID(id); err != nil {
		panic(err)
	}
	if d < 1 {
		panic(fmt.Sprintf("dag: SetDuration(%d, %d): durations must be ≥ 1", id, d))
	}
	if g.durs == nil {
		g.durs = make([]int32, len(g.cats))
		for i := range g.durs {
			g.durs[i] = 1
		}
	}
	// Tasks added after an earlier SetDuration call default to 1.
	for len(g.durs) < len(g.cats) {
		g.durs = append(g.durs, 1)
	}
	g.durs[id] = int32(d)
}

// Duration returns task id's duration (1 unless SetDuration was called).
func (g *Graph) Duration(id TaskID) int {
	if g.durs == nil || int(id) >= len(g.durs) {
		return 1
	}
	return int(g.durs[id])
}

// Timed reports whether any task has a duration above 1.
func (g *Graph) Timed() bool {
	for i := range g.durs {
		if g.durs[i] > 1 {
			return true
		}
	}
	return false
}

// TimedWorkVector returns duration-weighted α-work: the processor-steps
// category α must supply. Equals WorkVector for unit-duration graphs.
func (g *Graph) TimedWorkVector() []int {
	w := make([]int, g.k)
	for id, c := range g.cats {
		w[c-1] += g.Duration(TaskID(id))
	}
	return w
}

// TimedSpan returns the duration-weighted critical path: the minimum
// completion time with unlimited processors. Equals Span for unit
// durations.
func (g *Graph) TimedSpan() int {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	finish := make([]int, g.NumTasks())
	best := 0
	for _, u := range order {
		start := 0
		for _, p := range g.pred[u] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[u] = start + g.Duration(u)
		if finish[u] > best {
			best = finish[u]
		}
	}
	return best
}

// ExpandDurations converts a duration-annotated graph into its unit-task
// equivalent under PREEMPTIVE semantics: each task of duration d becomes a
// chain of d unit tasks (like Stretch, but honoring per-task durations).
// Scheduling the expansion with ordinary K-RAD models tasks whose progress
// can be paused and resumed; contrast with NewTimedInstance, which models
// non-preemptive execution of the same graph.
func ExpandDurations(g *Graph) *Graph {
	out := New(g.k).Named(g.name + "-expanded")
	heads := make([]TaskID, g.NumTasks())
	tails := make([]TaskID, g.NumTasks())
	for id := 0; id < g.NumTasks(); id++ {
		c := g.cats[id]
		d := g.Duration(TaskID(id))
		head := out.AddTask(c)
		tail := head
		for i := 1; i < d; i++ {
			next := out.AddTask(c)
			out.MustEdge(tail, next)
			tail = next
		}
		heads[id] = head
		tails[id] = tail
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, v := range g.succ[u] {
			out.MustEdge(tails[u], heads[v])
		}
	}
	return out
}

// timedHeights returns duration-weighted remaining-chain lengths for the
// critical-path pick policies.
func (g *Graph) timedHeights() ([]int32, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	h := make([]int32, g.NumTasks())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		best := int32(0)
		for _, v := range g.succ[u] {
			if h[v] > best {
				best = h[v]
			}
		}
		h[u] = best + int32(g.Duration(u))
	}
	return h, nil
}
