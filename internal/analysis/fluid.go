package analysis

import (
	"fmt"

	"krad/internal/metrics"
	"krad/internal/profile"
)

// The fluid replay: the paper's response-time analysis treats the "mean
// deprived allotment" as exactly equal across deprived jobs, which is only
// realizable with real-valued processor shares (the processor-sharing
// idealization standard in this literature). CheckInequality8 replays the
// induction with the library's integral DEQ and can observe sub-unit
// violations of the per-step inequality — a rounding gap, not an algorithm
// bug. CheckInequality8Fluid replays the same workload in the fluid model:
// fractional remaining work, exact equal shares. Under it the inequality
// is provable, and the replay verifies it holds (it is frequently tight).

// fluidJob is a profile job with real-valued remaining work.
type fluidJob struct {
	phases [][]float64 // remaining per phase per category
	phase  int
}

func newFluidJob(j *profile.Job) *fluidJob {
	counts := j.PhaseTasks()
	phases := make([][]float64, len(counts))
	for p, row := range counts {
		phases[p] = make([]float64, len(row))
		for a, v := range row {
			phases[p][a] = float64(v)
		}
	}
	return &fluidJob{phases: phases}
}

// done reports completion.
func (f *fluidJob) done() bool { return f.phase >= len(f.phases) }

// desire returns the remaining work of the current phase per category.
func (f *fluidJob) desire() []float64 {
	if f.done() {
		return nil
	}
	return f.phases[f.phase]
}

// remainingWork sums per category across remaining phases.
func (f *fluidJob) remainingWork(k int) []float64 {
	out := make([]float64, k)
	for p := f.phase; p < len(f.phases); p++ {
		for a, v := range f.phases[p] {
			out[a] += v
		}
	}
	return out
}

// remainingSpan counts remaining phases.
func (f *fluidJob) remainingSpan() int {
	if f.done() {
		return 0
	}
	return len(f.phases) - f.phase
}

// execute consumes allotted work; the phase barrier advances at the step
// boundary, mirroring the discrete engine.
func (f *fluidJob) execute(allot []float64) {
	cur := f.phases[f.phase]
	for a, v := range allot {
		cur[a] -= v
		if cur[a] < 1e-9 {
			cur[a] = 0
		}
	}
}

// advance moves past exhausted phases (one per step — the barrier).
func (f *fluidJob) advance() {
	if f.done() {
		return
	}
	for _, v := range f.phases[f.phase] {
		if v > 0 {
			return
		}
	}
	f.phase++
}

// fluidDeq is DEQ with real-valued shares: jobs desiring at most the fair
// share are fully satisfied, the rest split the remainder exactly equally.
func fluidDeq(desires []float64, p float64) []float64 {
	allot := make([]float64, len(desires))
	live := make([]int, 0, len(desires))
	for i, d := range desires {
		if d > 0 {
			live = append(live, i)
		}
	}
	for len(live) > 0 && p > 1e-12 {
		fair := p / float64(len(live))
		rest := live[:0]
		satisfied := 0
		for _, i := range live {
			if desires[i] <= fair+1e-12 {
				allot[i] = desires[i]
				p -= desires[i]
				satisfied++
			} else {
				rest = append(rest, i)
			}
		}
		if satisfied == 0 {
			share := p / float64(len(rest))
			for _, i := range rest {
				allot[i] = share
			}
			return allot
		}
		live = rest
	}
	return allot
}

// CheckInequality8Fluid replays the Theorem 5 induction in the fluid model
// on batched profile jobs under per-category fluid DEQ. Time is still
// discrete unit steps; only processor shares are real-valued.
func CheckInequality8Fluid(k int, caps []int, jobs []*profile.Job) (*InductionReport, error) {
	if len(caps) != k {
		return nil, fmt.Errorf("analysis: %d caps for K=%d", len(caps), k)
	}
	fl := make([]*fluidJob, len(jobs))
	totalWork := 0
	for i, j := range jobs {
		if j.K() != k {
			return nil, fmt.Errorf("analysis: job %d has K=%d, want %d", i, j.K(), k)
		}
		fl[i] = newFluidJob(j)
		totalWork += j.TotalTasks()
	}
	report := &InductionReport{MinSlack: 1e18}
	live := fl
	maxSteps := 4*totalWork + 64
	for t := 1; len(live) > 0; t++ {
		if t > maxSteps {
			return nil, fmt.Errorf("analysis: fluid replay exceeded %d steps", maxSteps)
		}
		n := len(live)
		preSwa := make([]float64, k)
		preSpan := 0
		works := make([]float64, n)
		for a := 0; a < k; a++ {
			for i, j := range live {
				works[i] = j.remainingWork(k)[a]
			}
			preSwa[a] = metrics.SqSumFloats(works) / float64(caps[a])
		}
		for _, j := range live {
			preSpan += j.remainingSpan()
		}

		// Per-category fluid DEQ on current-phase desires.
		desires := make([][]float64, n)
		for i, j := range live {
			desires[i] = j.desire()
		}
		for a := 0; a < k; a++ {
			col := make([]float64, n)
			for i := range live {
				col[i] = desires[i][a]
			}
			allot := fluidDeq(col, float64(caps[a]))
			for i, j := range live {
				if allot[i] > 0 {
					row := make([]float64, k)
					row[a] = allot[i]
					j.execute(row)
				}
			}
		}
		next := live[:0:len(live)]
		for _, j := range live {
			j.advance()
			if !j.done() {
				next = append(next, j)
			}
		}
		postSwa := make([]float64, k)
		postSpan := 0
		worksPost := make([]float64, len(next))
		for a := 0; a < k; a++ {
			for i, j := range next {
				worksPost[i] = j.remainingWork(k)[a]
			}
			postSwa[a] = metrics.SqSumFloats(worksPost) / float64(caps[a])
		}
		for _, j := range next {
			postSpan += j.remainingSpan()
		}

		c := 2 - 2/float64(n+1)
		rhs := float64(preSpan - postSpan)
		for a := 0; a < k; a++ {
			rhs += c * (preSwa[a] - postSwa[a])
		}
		lhs := float64(n)
		report.Steps++
		if slack := rhs - lhs; slack < report.MinSlack {
			report.MinSlack = slack
		}
		if lhs > rhs+1e-6 {
			report.Violations++
			if deficit := lhs - rhs; deficit > report.MaxDeficit {
				report.MaxDeficit = deficit
			}
			if report.FirstViolation == 0 {
				report.FirstViolation = int64(t)
			}
		}
		live = next
	}
	return report, nil
}
