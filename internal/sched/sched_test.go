package sched

import (
	"testing"
)

func TestJobViewTotalDesire(t *testing.T) {
	j := JobView{ID: 1, Desire: []int{2, 0, 3}}
	if j.TotalDesire() != 5 {
		t.Errorf("TotalDesire = %d, want 5", j.TotalDesire())
	}
}

func TestValidateAllotments(t *testing.T) {
	jobs := []JobView{
		{ID: 0, Desire: []int{2, 1}},
		{ID: 1, Desire: []int{1, 4}},
	}
	caps := []int{3, 4}
	ok := [][]int{{2, 1}, {1, 3}}
	if err := ValidateAllotments(jobs, caps, ok); err != nil {
		t.Errorf("valid allotment rejected: %v", err)
	}

	cases := []struct {
		name  string
		allot [][]int
	}{
		{"row count", [][]int{{1, 1}}},
		{"row shape", [][]int{{1}, {1, 1}}},
		{"negative", [][]int{{-1, 0}, {0, 0}}},
		{"over capacity", [][]int{{2, 0}, {2, 0}}},
	}
	for _, c := range cases {
		if err := ValidateAllotments(jobs, caps, c.allot); err == nil {
			t.Errorf("%s: accepted %v", c.name, c.allot)
		}
	}
}

// fixedCat is a trivial CategoryScheduler giving one processor to every job
// until capacity runs out; it also records completion notifications.
type fixedCat struct {
	name string
	done []int
}

func (f *fixedCat) Name() string { return f.name }

func (f *fixedCat) Allot(t int64, jobs []CatJob, p int) []int {
	out := make([]int, len(jobs))
	for i := range jobs {
		if p == 0 {
			break
		}
		out[i] = 1
		p--
	}
	return out
}

func (f *fixedCat) JobsDone(ids []int) { f.done = append(f.done, ids...) }

func TestPerCategoryProjection(t *testing.T) {
	a, b := &fixedCat{name: "a"}, &fixedCat{name: "b"}
	s := NewPerCategory("combo", []CategoryScheduler{a, b})
	if s.Name() != "combo" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Category(1) != a || s.Category(2) != b {
		t.Error("Category accessor wrong")
	}
	jobs := []JobView{
		{ID: 0, Desire: []int{1, 0}},
		{ID: 1, Desire: []int{0, 2}},
		{ID: 2, Desire: []int{3, 3}},
	}
	caps := []int{1, 5}
	allot := s.Allot(1, jobs, caps)
	if err := ValidateAllotments(jobs, caps, allot); err != nil {
		t.Fatal(err)
	}
	// Category 1 has capacity 1 and two active jobs (0, 2): only job 0.
	if allot[0][0] != 1 || allot[2][0] != 0 {
		t.Errorf("category 1 projection wrong: %v", allot)
	}
	// Job 1 is inactive in category 1: must get zero there.
	if allot[1][0] != 0 {
		t.Errorf("inactive job allotted: %v", allot)
	}
	// Category 2 actives (1, 2) both get one.
	if allot[1][1] != 1 || allot[2][1] != 1 {
		t.Errorf("category 2 projection wrong: %v", allot)
	}
}

func TestPerCategoryForwardsCompletions(t *testing.T) {
	a, b := &fixedCat{name: "a"}, &fixedCat{name: "b"}
	s := NewPerCategory("combo", []CategoryScheduler{a, b})
	s.JobsDone([]int{3, 4})
	if len(a.done) != 2 || len(b.done) != 2 {
		t.Errorf("completions not forwarded: %v %v", a.done, b.done)
	}
}

func TestPerCategoryPanicsOnCapsMismatch(t *testing.T) {
	s := NewPerCategory("combo", []CategoryScheduler{&fixedCat{}})
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched caps")
		}
	}()
	s.Allot(1, nil, []int{1, 2})
}

func TestPerCategoryEmptyJobs(t *testing.T) {
	s := NewPerCategory("combo", []CategoryScheduler{&fixedCat{}})
	if got := s.Allot(1, nil, []int{3}); len(got) != 0 {
		t.Errorf("empty allot = %v", got)
	}
}
