package metrics

import (
	"fmt"
	"math"
	"strings"

	"krad/internal/sim"
)

// Slowdowns returns each job's slowdown (a.k.a. stretch): response time
// divided by the job's ideal solo duration. The solo lower bound is
// max(T∞(Ji), maxα ⌈T1(Ji,α)/Pα⌉) — the job alone on the machine can do no
// better — so every slowdown is ≥ 1 and measures queueing/sharing delay.
func Slowdowns(r *sim.Result) []float64 {
	out := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		ideal := int64(j.Span)
		for a, w := range j.Work {
			if v := ceilDiv(int64(w), int64(r.Caps[a])); v > ideal {
				ideal = v
			}
		}
		if ideal < 1 {
			ideal = 1
		}
		out[i] = float64(j.Response()) / float64(ideal)
	}
	return out
}

// MaxSlowdown returns the worst slowdown — the fairness headline number:
// schedulers that starve (deq-only, fcfs under backlog) blow it up while
// keeping the mean respectable.
func MaxSlowdown(r *sim.Result) float64 {
	return MaxFloat(Slowdowns(r))
}

// Histogram renders a fixed-width ASCII histogram of a sample: `buckets`
// equal-width bins between min and max, one line per bin with a bar scaled
// to the modal count. Intended for terminal reports (cmd/kradsim,
// examples). Empty samples produce an explanatory line.
func Histogram(xs []float64, buckets, width int) string {
	if len(xs) == 0 {
		return "(empty sample)\n"
	}
	if buckets < 1 {
		buckets = 1
	}
	if width < 1 {
		width = 40
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	counts := make([]int, buckets)
	if hi == lo {
		counts[0] = len(xs)
	} else {
		for _, x := range xs {
			b := int(float64(buckets) * (x - lo) / (hi - lo))
			if b >= buckets {
				b = buckets - 1
			}
			counts[b]++
		}
	}
	modal := 0
	for _, c := range counts {
		if c > modal {
			modal = c
		}
	}
	var b strings.Builder
	step := (hi - lo) / float64(buckets)
	for i, c := range counts {
		bar := ""
		if modal > 0 {
			bar = strings.Repeat("█", c*width/modal)
		}
		fmt.Fprintf(&b, "%10.1f–%-10.1f %6d |%s\n", lo+float64(i)*step, lo+float64(i+1)*step, c, bar)
	}
	return b.String()
}
